// End-to-end golden tests: checked-in FASTA fixtures must produce
// byte-identical canonical clusterings AND byte-identical modeled
// run-times at every rank count, with the memo cache on or off.
//
// These lock the whole pipeline (GST -> pair generation -> master/slave
// protocol -> alignment verdicts -> virtual-time accounting): any change
// that perturbs a verdict, the processing order, or a charged cost shows
// up as a golden diff, not a silent drift.
//
// The suite is instantiated once per PairSource backend (gst/kmer/fm) by
// tests/CMakeLists.txt. All backends must reproduce the *same* canonical
// partition (pinned in <fixture>.clusters.txt, owned by the gst build);
// modeled run-times legitimately differ per backend and are pinned in
// <fixture>.runtimes[.<backend>].txt.
//
// Regenerate after an intentional change with
//   ESTCLUST_UPDATE_GOLDEN=1 ./golden_clusters_test_<backend>
// (the gst binary rewrites the FASTA + clusters goldens; every binary
// rewrites its own runtimes file) and review the diff like any other
// code change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "bio/dataset.hpp"
#include "bio/fasta.hpp"
#include "cluster/partition.hpp"
#include "mpr/fault.hpp"
#include "mpr/runtime.hpp"
#include "pace/parallel.hpp"
#include "pairgen/source.hpp"
#include "sim/workload.hpp"

#ifndef ESTCLUST_TEST_DATA_DIR
#error "ESTCLUST_TEST_DATA_DIR must be defined by the build"
#endif

#ifndef ESTCLUST_PAIRSOURCE_BACKEND
#define ESTCLUST_PAIRSOURCE_BACKEND "gst"
#endif

namespace estclust {
namespace {

pairgen::Backend test_backend() {
  auto b = pairgen::parse_backend(ESTCLUST_PAIRSOURCE_BACKEND);
  EXPECT_TRUE(b.has_value());
  return b.value_or(pairgen::Backend::kGst);
}

bool gst_backend() { return test_backend() == pairgen::Backend::kGst; }

std::string data_path(const std::string& name) {
  return std::string(ESTCLUST_TEST_DATA_DIR) + "/" + name;
}

/// gst owns the historical .runtimes.txt golden; the other backends have
/// their own files since index construction / pair work is charged
/// differently per backend.
std::string runtimes_name(const std::string& fixture) {
  if (gst_backend()) return fixture + ".runtimes.txt";
  return fixture + ".runtimes." + std::string(ESTCLUST_PAIRSOURCE_BACKEND) +
         ".txt";
}

bool update_mode() {
  const char* v = std::getenv("ESTCLUST_UPDATE_GOLDEN");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

pace::PaceConfig golden_config() {
  pace::PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 24;
  cfg.batchsize = 20;
  cfg.overlap.band = 8;
  cfg.overlap.min_quality = 0.75;
  cfg.overlap.min_overlap = 40;
  cfg.pair_source = test_backend();
  return cfg;
}

/// Exact decimal form of the virtual clock: 17 significant digits round-
/// trip an IEEE double, so equal strings <=> bit-identical run-times.
std::string format_time(double t) {
  std::ostringstream out;
  out << std::setprecision(17) << t;
  return out.str();
}

struct GoldenRun {
  std::string clusters;
  std::string runtime_line;
};

GoldenRun run_fixture(const bio::EstSet& ests, int ranks, bool memo,
                      const mpr::FaultSpec* faults = nullptr) {
  pace::PaceConfig cfg = golden_config();
  cfg.memo = memo;
  GoldenRun out;
  std::mutex mu;
  mpr::Runtime rt(ranks, mpr::CostModel{});
  if (faults != nullptr) {
    rt.set_fault_plan(std::make_shared<mpr::FaultPlan>(*faults, ranks));
  }
  rt.run([&](mpr::Communicator& comm) {
    auto res = pace::cluster_parallel(comm, ests, cfg);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      out.clusters = cluster::canonical_partition(res.labels);
      std::ostringstream line;
      line << "ranks=" << ranks << " memo=" << (memo ? "on" : "off")
           << " t_total=" << format_time(res.stats.t_total)
           << " clusters=" << res.stats.num_clusters;
      out.runtime_line = line.str();
    }
  });
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << content;
}

struct Fixture {
  const char* name;
  sim::SimConfig sim;
};

Fixture small_fixture() {
  Fixture f;
  f.name = "golden_small";
  f.sim.num_genes = 6;
  f.sim.num_ests = 80;
  f.sim.est_len_mean = 220;
  f.sim.est_len_stddev = 40;
  f.sim.est_len_min = 80;
  f.sim.sub_rate = 0.01;
  f.sim.ins_rate = 0.002;
  f.sim.del_rate = 0.002;
  f.sim.seed = 20020811;
  return f;
}

Fixture noisy_fixture() {
  Fixture f;
  f.name = "golden_noisy";
  f.sim.num_genes = 10;
  f.sim.num_ests = 120;
  f.sim.est_len_mean = 260;
  f.sim.est_len_stddev = 60;
  f.sim.est_len_min = 90;
  f.sim.sub_rate = 0.02;
  f.sim.ins_rate = 0.005;
  f.sim.del_rate = 0.005;
  f.sim.seed = 4177;
  return f;
}

void check_fixture(const Fixture& fix) {
  const std::string fasta_path = data_path(std::string(fix.name) + ".fasta");
  const std::string clusters_path =
      data_path(std::string(fix.name) + ".clusters.txt");
  const std::string runtimes_path = data_path(runtimes_name(fix.name));

  if (update_mode() && gst_backend()) {
    // Regenerate the FASTA fixture from its pinned simulator seed, so the
    // fixture file itself is reproducible. Only the gst build owns the
    // FASTA and clusters goldens; kmer/fm must match them, not mint them.
    auto wl = sim::generate(fix.sim);
    std::vector<bio::Sequence> seqs;
    for (std::size_t i = 0; i < wl.ests.num_ests(); ++i) {
      seqs.push_back(wl.ests.est(static_cast<bio::EstId>(i)));
    }
    bio::write_fasta_file(fasta_path, seqs);
  }

  bio::EstSet ests(bio::read_fasta_file(fasta_path));

  std::string clusters;  // must be identical across every configuration
  std::ostringstream runtimes;
  for (int ranks : {1, 2, 4, 8}) {
    for (bool memo : {false, true}) {
      GoldenRun run = run_fixture(ests, ranks, memo);
      if (clusters.empty()) {
        clusters = run.clusters;
      } else {
        ASSERT_EQ(run.clusters, clusters)
            << "partition differs at ranks=" << ranks
            << " memo=" << (memo ? "on" : "off");
      }
      runtimes << run.runtime_line << '\n';
    }
  }

  if (update_mode()) {
    if (gst_backend()) write_file(clusters_path, clusters);
    write_file(runtimes_path, runtimes.str());
    GTEST_SKIP() << "golden files regenerated for " << fix.name;
  }

  EXPECT_EQ(clusters, read_file(clusters_path))
      << "cluster golden drifted for " << fix.name
      << " (ESTCLUST_UPDATE_GOLDEN=1 regenerates after an intended change)";
  EXPECT_EQ(runtimes.str(), read_file(runtimes_path))
      << "modeled run-time golden drifted for " << fix.name
      << " (ESTCLUST_UPDATE_GOLDEN=1 regenerates after an intended change)";
}

TEST(GoldenClusters, Small) { check_fixture(small_fixture()); }

TEST(GoldenClusters, Noisy) { check_fixture(noisy_fixture()); }

/// Seeded fault plans must reproduce the fault-free golden partition
/// byte-for-byte: drops, duplicates and delays only reorder/retry the
/// protocol, and a killed slave's work is recovered deterministically.
void check_faulted_fixture(const Fixture& fix) {
  if (update_mode()) GTEST_SKIP() << "goldens regenerated by check_fixture";
  const std::string golden =
      read_file(data_path(std::string(fix.name) + ".clusters.txt"));
  ASSERT_FALSE(golden.empty()) << "missing golden for " << fix.name;
  bio::EstSet ests(
      bio::read_fasta_file(data_path(std::string(fix.name) + ".fasta")));

  struct Plan {
    const char* label;
    const char* spec;
  };
  const Plan plans[] = {
      {"drop-heavy", "seed=101,drop=0.4,delay=0.2"},
      {"dup-heavy", "seed=202,dup=0.6,delay=0.2"},
      {"slave-killed", "seed=303,kill=2@0.02"},
      {"combined", "seed=404,drop=0.25,dup=0.25,delay=0.25,kill=3@0.03"},
  };
  for (const Plan& plan : plans) {
    const mpr::FaultSpec spec = mpr::parse_fault_spec(plan.spec);
    const GoldenRun run = run_fixture(ests, 4, /*memo=*/true, &spec);
    EXPECT_EQ(run.clusters, golden)
        << "fault plan '" << plan.label << "' (" << plan.spec
        << ") perturbed the partition of " << fix.name;
  }
}

TEST(GoldenClustersFaulted, Small) { check_faulted_fixture(small_fixture()); }

TEST(GoldenClustersFaulted, Noisy) { check_faulted_fixture(noisy_fixture()); }

}  // namespace
}  // namespace estclust
