// Tests for the observability layer: span validation, deterministic
// virtual timestamps, Chrome-JSON well-formedness, metrics merging, and
// the guarantee that tracing never changes the modeled run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>
#include <vector>

#include "mpr/mailbox.hpp"
#include "mpr/runtime.hpp"
#include "obs/critpath.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "pace/messages.hpp"
#include "pace/parallel.hpp"
#include "sim/workload.hpp"
#include "util/check.hpp"

namespace {

using namespace estclust;

sim::Workload small_workload() {
  sim::SimConfig cfg = sim::scaled_config(80, 20020811);
  return sim::generate(cfg);
}

pace::PaceConfig small_pace_config() {
  pace::PaceConfig cfg;
  cfg.gst.window = 6;
  return cfg;
}

struct TracedRun {
  std::vector<std::uint32_t> labels;
  pace::PaceStats stats;
  double elapsed_vtime = 0.0;
};

TracedRun run_pace(const bio::EstSet& ests, const pace::PaceConfig& cfg,
                   int p, bool traced, mpr::Runtime* keep = nullptr) {
  mpr::Runtime local(p, mpr::CostModel{});
  mpr::Runtime& rt = keep ? *keep : local;
  if (traced) rt.enable_tracing(true);
  TracedRun out;
  std::mutex mu;
  rt.run([&](mpr::Communicator& comm) {
    auto res = pace::cluster_parallel(comm, ests, cfg);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      out.labels = std::move(res.labels);
      out.stats = res.stats;
    }
  });
  out.elapsed_vtime = rt.elapsed_vtime();
  return out;
}

TEST(TraceRecorderTest, ValidatesMatchedSpans) {
  obs::TraceRecorder rec(2);
  double clock = 0.0;
  rec.rank(0).bind(0, &clock, rec.epoch());
  rec.rank(0).begin("outer", "phase");
  clock = 1.0;
  rec.rank(0).begin("inner", "phase");
  clock = 2.0;
  rec.rank(0).end("inner");
  rec.rank(0).end("outer");
  EXPECT_NO_THROW(rec.validate());
  EXPECT_EQ(rec.total_events(), 4u);
}

TEST(TraceRecorderTest, DetectsMismatchedSpanName) {
  obs::TraceRecorder rec(1);
  double clock = 0.0;
  rec.rank(0).bind(0, &clock, rec.epoch());
  rec.rank(0).begin("outer", "phase");
  rec.rank(0).end("wrong");
  EXPECT_THROW(rec.validate(), CheckError);
}

TEST(TraceRecorderTest, DetectsUnclosedSpan) {
  obs::TraceRecorder rec(1);
  double clock = 0.0;
  rec.rank(0).bind(0, &clock, rec.epoch());
  rec.rank(0).begin("outer", "phase");
  EXPECT_THROW(rec.validate(), CheckError);
}

TEST(TraceRecorderTest, DetectsEndWithoutBegin) {
  obs::TraceRecorder rec(1);
  double clock = 0.0;
  rec.rank(0).bind(0, &clock, rec.epoch());
  rec.rank(0).end("phantom");
  EXPECT_THROW(rec.validate(), CheckError);
}

TEST(TraceRecorderTest, ScopedSpanIsNullSafe) {
  obs::ScopedSpan span(nullptr, "nothing", "phase");
  ESTCLUST_TRACE_SPAN(nullptr, "nothing_either", "phase");
  ESTCLUST_TRACE_INSTANT(nullptr, "still_nothing", "phase", 0);
}

TEST(VirtualClockTest, SplitsBusyCommIdle) {
  mpr::VirtualClock clk;
  clk.advance(2.0);
  clk.advance_comm(0.5);
  clk.sync_to(4.0);     // 1.5 s idle jump
  clk.sync_to(3.0);     // in the past: no-op
  clk.advance(1.0);
  EXPECT_DOUBLE_EQ(clk.busy_time(), 3.0);
  EXPECT_DOUBLE_EQ(clk.comm_time(), 0.5);
  EXPECT_DOUBLE_EQ(clk.idle_time(), 1.5);
  EXPECT_DOUBLE_EQ(clk.active_time(), 3.5);
  EXPECT_DOUBLE_EQ(clk.time(),
                   clk.busy_time() + clk.comm_time() + clk.idle_time());
}

TEST(MetricsRegistryTest, CountersSumOnMerge) {
  obs::MetricsRegistry a, b;
  a.counter("pairs").add(3);
  b.counter("pairs").add(4);
  b.counter("only_b").add(1);
  a.merge_from(b);
  EXPECT_EQ(a.counter_value("pairs"), 7u);
  EXPECT_EQ(a.counter_value("only_b"), 1u);
  EXPECT_EQ(a.counter_value("absent"), 0u);
}

TEST(MetricsRegistryTest, GaugesMergeByOp) {
  obs::MetricsRegistry a, b;
  a.gauge("t_max", obs::MergeOp::kMax).set(1.0);
  b.gauge("t_max", obs::MergeOp::kMax).set(2.5);
  a.gauge("t_min", obs::MergeOp::kMin).set(1.0);
  b.gauge("t_min", obs::MergeOp::kMin).set(0.25);
  a.gauge("t_sum", obs::MergeOp::kSum).set(1.0);
  b.gauge("t_sum", obs::MergeOp::kSum).set(2.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.gauge_value("t_max"), 2.5);
  EXPECT_DOUBLE_EQ(a.gauge_value("t_min"), 0.25);
  EXPECT_DOUBLE_EQ(a.gauge_value("t_sum"), 3.0);
}

TEST(MetricsRegistryTest, StatsAndHistogramsMerge) {
  obs::MetricsRegistry a, b;
  a.stats("len").add(1.0);
  a.stats("len").add(3.0);
  b.stats("len").add(5.0);
  a.histogram("h", 0.0, 10.0, 5).add(1.0);
  b.histogram("h", 0.0, 10.0, 5).add(9.0);
  a.merge_from(b);
  const RunningStats* s = a.find_stats("len");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count(), 3u);
  EXPECT_DOUBLE_EQ(s->mean(), 3.0);
  EXPECT_DOUBLE_EQ(s->max(), 5.0);
}

TEST(MetricsRegistryTest, ReportAndJsonAreDeterministic) {
  obs::MetricsRegistry m;
  m.counter("z.last").add(2);
  m.counter("a.first").add(1);
  m.gauge("m.gauge").set(0.5);
  std::ostringstream r1, r2, j;
  m.write_report(r1);
  m.write_report(r2);
  m.write_json(j);
  EXPECT_EQ(r1.str(), r2.str());
  // Sorted name order: a.first before z.last in both formats.
  EXPECT_LT(r1.str().find("a.first"), r1.str().find("z.last"));
  EXPECT_LT(j.str().find("a.first"), j.str().find("z.last"));
  EXPECT_EQ(j.str().front(), '{');
}

// A traced parallel run produces identical virtual timestamps every time:
// the trace is a function of the input, not the schedule.
TEST(ObsPipelineTest, DeterministicVirtualTimestamps) {
  auto wl = small_workload();
  auto cfg = small_pace_config();
  const int p = 3;

  mpr::Runtime rt1(p, mpr::CostModel{});
  mpr::Runtime rt2(p, mpr::CostModel{});
  auto run1 = run_pace(wl.ests, cfg, p, true, &rt1);
  auto run2 = run_pace(wl.ests, cfg, p, true, &rt2);

  ASSERT_NE(rt1.tracer(), nullptr);
  ASSERT_NE(rt2.tracer(), nullptr);
  rt1.tracer()->validate();
  EXPECT_EQ(run1.labels, run2.labels);
  EXPECT_EQ(run1.elapsed_vtime, run2.elapsed_vtime);
  ASSERT_EQ(rt1.tracer()->total_events(), rt2.tracer()->total_events());
  for (int r = 0; r < p; ++r) {
    const auto& e1 = rt1.tracer()->rank(r).events();
    const auto& e2 = rt2.tracer()->rank(r).events();
    ASSERT_EQ(e1.size(), e2.size()) << "rank " << r;
    for (std::size_t i = 0; i < e1.size(); ++i) {
      EXPECT_EQ(e1[i].kind, e2[i].kind) << "rank " << r << " event " << i;
      EXPECT_STREQ(e1[i].name, e2[i].name) << "rank " << r << " event " << i;
      EXPECT_EQ(e1[i].vtime, e2[i].vtime) << "rank " << r << " event " << i;
      EXPECT_EQ(e1[i].id, e2[i].id) << "rank " << r << " event " << i;
    }
  }

  // Byte-identical Chrome export (wall time excluded by default).
  std::ostringstream j1, j2;
  obs::write_chrome_trace(j1, *rt1.tracer());
  obs::write_chrome_trace(j2, *rt2.tracer());
  EXPECT_EQ(j1.str(), j2.str());
}

TEST(ObsPipelineTest, ChromeTraceWellFormed) {
  auto wl = small_workload();
  auto cfg = small_pace_config();
  const int p = 3;
  mpr::Runtime rt(p, mpr::CostModel{});
  run_pace(wl.ests, cfg, p, true, &rt);

  std::ostringstream os;
  obs::write_chrome_trace(os, *rt.tracer());
  const std::string json = os.str();

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  // Flow events recorded on both sides.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Wall time stays out of the default export (determinism).
  EXPECT_EQ(json.find("wall_us"), std::string::npos);

  // Per rank: every begin has an end and vtimes never decrease.
  for (int r = 0; r < p; ++r) {
    const auto& events = rt.tracer()->rank(r).events();
    int depth = 0;
    double last = 0.0;
    for (const auto& e : events) {
      if (e.kind == obs::EventKind::kBegin) ++depth;
      if (e.kind == obs::EventKind::kEnd) --depth;
      ASSERT_GE(depth, 0);
      EXPECT_GE(e.vtime, last);
      last = e.vtime;
    }
    EXPECT_EQ(depth, 0) << "rank " << r;
  }
}

TEST(ObsPipelineTest, BreakdownReportCoversPipelinePhases) {
  auto wl = small_workload();
  auto cfg = small_pace_config();
  const int p = 3;
  mpr::Runtime rt(p, mpr::CostModel{});
  run_pace(wl.ests, cfg, p, true, &rt);

  auto agg = obs::aggregate_phases(*rt.tracer());
  EXPECT_GE(agg.size(), 5u);
  for (const char* phase : {"partitioning", "gst_build", "node_sorting",
                            "pairgen", "alignment", "master_service"}) {
    EXPECT_TRUE(agg.count(phase)) << phase;
  }

  std::ostringstream os;
  obs::write_breakdown_report(os, *rt.tracer(), rt.rank_times());
  const std::string report = os.str();
  for (const char* phase : {"partitioning", "gst_build", "node_sorting",
                            "alignment", "master busy"}) {
    EXPECT_NE(report.find(phase), std::string::npos) << phase;
  }
}

// Registry round-trip: the counters published by the pipeline agree with
// the aggregated PaceStats rank 0 reports.
TEST(ObsPipelineTest, RegistryMatchesPaceStats) {
  auto wl = small_workload();
  auto cfg = small_pace_config();
  const int p = 3;
  mpr::Runtime rt(p, mpr::CostModel{});
  auto run = run_pace(wl.ests, cfg, p, false, &rt);

  auto merged = rt.merged_metrics();
  EXPECT_EQ(merged.counter_value("pace.pairs_generated"),
            run.stats.pairs_generated);
  EXPECT_EQ(merged.counter_value("pace.pairs_aligned"),
            run.stats.pairs_processed);
  EXPECT_EQ(merged.counter_value("pace.pairs_accepted"),
            run.stats.pairs_accepted);
  EXPECT_DOUBLE_EQ(merged.gauge_value("pace.t_total"), run.stats.t_total);
  EXPECT_GT(merged.counter_value("gst.suffixes_owned"), 0u);
  EXPECT_GT(merged.counter_value("mpr.messages_sent"), 0u);
  EXPECT_GT(merged.counter_value("mpr.bytes_sent"), 0u);
}

// Tracing must be free in virtual time: same clusters, same modeled
// runtime, whether or not a recorder is attached.
TEST(ObsPipelineTest, TracingDoesNotPerturbTheRun) {
  auto wl = small_workload();
  auto cfg = small_pace_config();
  const int p = 3;
  auto traced = run_pace(wl.ests, cfg, p, true);
  auto untraced = run_pace(wl.ests, cfg, p, false);
  EXPECT_EQ(traced.labels, untraced.labels);
  EXPECT_EQ(traced.elapsed_vtime, untraced.elapsed_vtime);
  EXPECT_EQ(traced.stats.pairs_generated, untraced.stats.pairs_generated);
  EXPECT_EQ(traced.stats.pairs_processed, untraced.stats.pairs_processed);
}

TEST(MetricsRegistryTest, HistogramQuantilesAreExact) {
  obs::MetricsRegistry m;
  auto& h = m.histogram("latency", 0.0, 100.0, 10);
  // Odd count and a median position that lands on a sample: exact values.
  for (double v : {30.0, 10.0, 50.0, 20.0, 40.0}) h.add(v);
  EXPECT_DOUBLE_EQ(h.p50(), 30.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 50.0);
  // Interpolated positions: pos = q * (n-1) between sorted neighbors.
  EXPECT_NEAR(h.quantile(0.25), 20.0, 1e-9);
  EXPECT_NEAR(h.p95(), 48.0, 1e-9);
  EXPECT_NEAR(h.p99(), 49.6, 1e-9);
  // Out-of-range samples clamp into edge *bins* but quantiles stay exact.
  h.add(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
  // The registry accessor finds it; an empty histogram reports 0.
  ASSERT_NE(m.find_histogram("latency"), nullptr);
  obs::MetricsRegistry empty;
  EXPECT_DOUBLE_EQ(empty.histogram("none", 0.0, 1.0, 4).p99(), 0.0);
}

// Quantiles after merging depend only on the combined sample multiset:
// any merge order gives bit-identical p50/p95/p99, and both equal the
// quantiles of one histogram fed every sample directly.
TEST(MetricsRegistryTest, HistogramQuantilesMergeStable) {
  auto fill = [](obs::MetricsRegistry& m, std::initializer_list<double> vs) {
    auto& h = m.histogram("h", 0.0, 64.0, 8);
    for (double v : vs) h.add(v);
  };
  obs::MetricsRegistry a1, b1, a2, b2, c1, c2, flat;
  fill(a1, {3.0, 61.0, 17.0});
  fill(a2, {3.0, 61.0, 17.0});
  fill(b1, {29.0, 5.0});
  fill(b2, {29.0, 5.0});
  fill(c1, {44.0, 8.0, 23.0});
  fill(c2, {44.0, 8.0, 23.0});
  fill(flat, {3.0, 61.0, 17.0, 29.0, 5.0, 44.0, 8.0, 23.0});

  a1.merge_from(b1);
  a1.merge_from(c1);  // a <- b <- c
  c2.merge_from(b2);
  c2.merge_from(a2);  // c <- b <- a
  const Histogram* h1 = a1.find_histogram("h");
  const Histogram* h2 = c2.find_histogram("h");
  const Histogram* hf = flat.find_histogram("h");
  ASSERT_NE(h1, nullptr);
  ASSERT_NE(h2, nullptr);
  ASSERT_NE(hf, nullptr);
  EXPECT_EQ(h1->total(), 8u);
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h1->quantile(q), h2->quantile(q)) << "q=" << q;
    EXPECT_EQ(h1->quantile(q), hf->quantile(q)) << "q=" << q;
  }
  // Quantiles reach the text formats the registry emits.
  std::ostringstream json;
  a1.write_json(json);
  EXPECT_NE(json.str().find("h.p50"), std::string::npos);
  EXPECT_NE(json.str().find("h.p99"), std::string::npos);
}

obs::ProfileOptions test_profile_options() {
  obs::ProfileOptions opts;
  opts.tag_names = {{pace::kTagReport, "REPORT"},
                    {pace::kTagAssign, "ASSIGN"},
                    {pace::kTagAck, "ACK"},
                    {pace::kTagHeartbeat, "HEARTBEAT"}};
  opts.internal_tag_base = mpr::kInternalTagBase;
  opts.recv_overhead = mpr::CostModel{}.recv_overhead;
  return opts;
}

// The tentpole invariant: the critical path computed from the trace tiles
// [0, makespan] contiguously, so its length equals the makespan bitwise —
// not merely within a tolerance.
TEST(CritPathTest, PathLengthEqualsMakespanExactly) {
  auto wl = small_workload();
  auto cfg = small_pace_config();
  const int p = 4;
  mpr::Runtime rt(p, mpr::CostModel{});
  run_pace(wl.ests, cfg, p, true, &rt);

  const auto times = rt.rank_times();
  double makespan = 0.0;
  for (const auto& t : times) makespan = std::max(makespan, t.total);

  auto path = obs::compute_critical_path(*rt.tracer(), times);
  EXPECT_EQ(path.makespan, makespan);
  ASSERT_FALSE(path.segments.empty());
  EXPECT_EQ(path.length(), makespan);  // bitwise, by telescoping
  EXPECT_EQ(path.segments.front().begin, 0.0);
  EXPECT_EQ(path.segments.back().end, makespan);
  bool any_wire = false;
  for (std::size_t i = 0; i < path.segments.size(); ++i) {
    const auto& s = path.segments[i];
    EXPECT_LE(s.begin, s.end);
    if (i + 1 < path.segments.size()) {
      EXPECT_EQ(s.end, path.segments[i + 1].begin) << "segment " << i;
    }
    if (s.wire) {
      any_wire = true;
      EXPECT_NE(s.src, s.rank);
      EXPECT_GE(s.src, 0);
      EXPECT_NE(s.flow_id, 0u);
    }
  }
  // A 4-rank run cannot be critical on one rank alone: the path must
  // cross the wire at least once.
  EXPECT_TRUE(any_wire);
}

// Per-rank attribution: slack is defined against busy+comm with the same
// IEEE subtraction the JSON validator uses, so it must hold bit-exactly;
// it decomposes into measured waiting plus the post-finish tail to fp
// rounding, and the waiting side itself reproduces the clock's idle split.
TEST(CritPathTest, SlackAndIdleAttributionAddUp) {
  auto wl = small_workload();
  auto cfg = small_pace_config();
  const int p = 3;
  mpr::Runtime rt(p, mpr::CostModel{});
  run_pace(wl.ests, cfg, p, true, &rt);

  const auto opts = test_profile_options();
  auto prof = obs::build_profile(*rt.tracer(), rt.rank_times(), opts);
  ASSERT_EQ(prof.ranks, p);
  ASSERT_EQ(prof.rank_rows.size(), static_cast<std::size_t>(p));
  for (const auto& row : prof.rank_rows) {
    EXPECT_EQ(row.slack, prof.makespan - (row.busy + row.comm));
    EXPECT_NEAR(row.slack, row.idle + row.tail, 1e-9);
    EXPECT_GE(row.slack, -1e-12);
    EXPECT_GE(row.tail, 0.0);  // makespan is the max of the rank totals
  }

  // Idle intervals re-derived from the trace match the clocks' idle split.
  auto idles = obs::collect_idle_intervals(*rt.tracer(), opts.recv_overhead);
  std::vector<double> idle_sum(p, 0.0);
  for (const auto& iv : idles) {
    ASSERT_GE(iv.rank, 0);
    ASSERT_LT(iv.rank, p);
    EXPECT_LE(iv.begin, iv.end);
    idle_sum[iv.rank] += iv.end - iv.begin;
  }
  const auto times = rt.rank_times();
  for (int r = 0; r < p; ++r) {
    EXPECT_NEAR(idle_sum[r], times[r].idle, 1e-9) << "rank " << r;
  }

  // The by-op shares partition the path: their sum is the makespan.
  double share_sum = 0.0;
  for (const auto& s : prof.by_op) share_sum += s.vtime;
  EXPECT_NEAR(share_sum, prof.makespan, 1e-9);

  // Wait-by-tag covers the same waiting time, keyed by the arriving tag.
  ASSERT_FALSE(prof.wait_by_tag.empty());
  double wait_sum = 0.0, idle_total = 0.0;
  for (const auto& w : prof.wait_by_tag) {
    EXPECT_GT(w.count, 0u);
    EXPECT_EQ(w.name, obs::tag_label(w.tag, opts));
    wait_sum += w.vtime;
  }
  for (const auto& t : times) idle_total += t.idle;
  EXPECT_NEAR(wait_sum, idle_total, 1e-9);

  // Utilization timelines: one per rank, bounded fractions.
  ASSERT_EQ(prof.utilization.size(), static_cast<std::size_t>(p));
  for (const auto& tl : prof.utilization) {
    ASSERT_EQ(tl.size(),
              static_cast<std::size_t>(opts.timeline_buckets));
    for (double u : tl) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
  }
  // Fig 8's measure: the master does real but small protocol work.
  EXPECT_GT(prof.master_span_vtime, 0.0);
  EXPECT_GT(prof.master_utilization, 0.0);
  EXPECT_LT(prof.master_utilization, 1.0);
}

// Profiles are a pure function of the seeded input: two independent runs
// produce byte-identical JSON and reports.
TEST(CritPathTest, ProfileOutputsAreDeterministic) {
  auto wl = small_workload();
  auto cfg = small_pace_config();
  const int p = 3;
  mpr::Runtime rt1(p, mpr::CostModel{});
  mpr::Runtime rt2(p, mpr::CostModel{});
  run_pace(wl.ests, cfg, p, true, &rt1);
  run_pace(wl.ests, cfg, p, true, &rt2);

  const auto opts = test_profile_options();
  auto prof1 = obs::build_profile(*rt1.tracer(), rt1.rank_times(), opts);
  auto prof2 = obs::build_profile(*rt2.tracer(), rt2.rank_times(), opts);
  std::ostringstream j1, j2, r1, r2;
  obs::write_profile_json(j1, prof1);
  obs::write_profile_json(j2, prof2);
  EXPECT_EQ(j1.str(), j2.str());
  obs::write_profile_report(r1, prof1, opts);
  obs::write_profile_report(r2, prof2, opts);
  EXPECT_EQ(r1.str(), r2.str());

  // Well-formedness spot checks on the JSON artifact.
  const std::string& js = j1.str();
  EXPECT_NE(js.find("\"schema\":\"estclust-profile-v1\""),
            std::string::npos);
  EXPECT_NE(js.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(js.find("\"wait_by_tag\""), std::string::npos);
  EXPECT_NE(js.find("\"master_utilization\""), std::string::npos);
}

TEST(CritPathTest, TagLabelsFollowTheNamingScheme) {
  const auto opts = test_profile_options();
  EXPECT_EQ(obs::tag_label(pace::kTagReport, opts), "REPORT");
  EXPECT_EQ(obs::tag_label(pace::kTagAssign, opts), "ASSIGN");
  EXPECT_EQ(obs::tag_label(-1, opts), "untagged");
  EXPECT_EQ(obs::tag_label(12345, opts), "tag12345");
  EXPECT_EQ(obs::tag_label(mpr::kInternalTagBase + 7, opts), "collective");
}

TEST(ObsPipelineTest, RankTimesSplitAddsUp) {
  auto wl = small_workload();
  auto cfg = small_pace_config();
  const int p = 3;
  mpr::Runtime rt(p, mpr::CostModel{});
  run_pace(wl.ests, cfg, p, false, &rt);
  auto times = rt.rank_times();
  ASSERT_EQ(times.size(), static_cast<std::size_t>(p));
  for (const auto& t : times) {
    EXPECT_NEAR(t.total, t.busy + t.comm + t.idle, 1e-9);
    EXPECT_GE(t.busy, 0.0);
    EXPECT_GE(t.comm, 0.0);
    EXPECT_GE(t.idle, 0.0);
  }
}

}  // namespace
