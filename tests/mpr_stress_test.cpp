// Stress tests of the message-passing runtime: message storms, mixed
// point-to-point and collective traffic, and virtual-clock invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mpr/communicator.hpp"
#include "mpr/runtime.hpp"
#include "util/prng.hpp"

namespace estclust::mpr {
namespace {

class StormTest : public testing::TestWithParam<int> {};

TEST_P(StormTest, AllToAllMessageStormDeliversEverything) {
  const int p = GetParam();
  const int kPerPeer = 25;
  Runtime rt(p, CostModel{});
  std::atomic<std::uint64_t> sent_sum{0}, received_sum{0};
  rt.run([&](Communicator& comm) {
    Prng rng(1000 + comm.rank());
    std::uint64_t my_sent = 0;
    // Send kPerPeer messages to every other rank with random payloads and
    // a tag identifying the sender.
    for (int dest = 0; dest < p; ++dest) {
      if (dest == comm.rank()) continue;
      for (int k = 0; k < kPerPeer; ++k) {
        BufWriter w;
        std::uint64_t v = rng.next();
        my_sent += v;
        w.put(v);
        comm.send(dest, comm.rank(), w.take());
      }
    }
    // Receive exactly kPerPeer from each peer, any order.
    std::uint64_t my_recv = 0;
    for (int src = 0; src < p; ++src) {
      if (src == comm.rank()) continue;
      for (int k = 0; k < kPerPeer; ++k) {
        Message m = comm.recv(src, src);
        BufReader r(m.payload);
        my_recv += r.get<std::uint64_t>();
      }
    }
    sent_sum += my_sent;
    received_sum += my_recv;
  });
  EXPECT_EQ(sent_sum.load(), received_sum.load());
}

TEST_P(StormTest, InterleavedTagsNeverCross) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  Runtime rt(p, CostModel{});
  rt.run([&](Communicator& comm) {
    // Every rank sends its neighbour 30 messages alternating two tags,
    // then receives per-tag; ordering within a tag must be FIFO.
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() + p - 1) % p;
    for (int i = 0; i < 30; ++i) {
      BufWriter w;
      w.put<std::uint32_t>(i);
      comm.send(next, i % 2, w.take());
    }
    for (int tag = 0; tag < 2; ++tag) {
      std::uint32_t last = 0;
      bool first = true;
      for (int i = 0; i < 15; ++i) {
        Message m = comm.recv(prev, tag);
        BufReader r(m.payload);
        std::uint32_t v = r.get<std::uint32_t>();
        EXPECT_EQ(v % 2, static_cast<std::uint32_t>(tag));
        if (!first) {
          EXPECT_GT(v, last);
        }
        last = v;
        first = false;
      }
    }
  });
}

TEST_P(StormTest, RepeatedCollectivesStaySynchronized) {
  const int p = GetParam();
  Runtime rt(p, CostModel{});
  rt.run([&](Communicator& comm) {
    std::uint64_t acc = 1;
    for (int round = 0; round < 20; ++round) {
      std::uint64_t s = comm.allreduce_sum(acc + comm.rank());
      std::uint64_t expected =
          static_cast<std::uint64_t>(p) * acc +
          static_cast<std::uint64_t>(p) * (p - 1) / 2;
      ASSERT_EQ(s, expected) << "round " << round;
      acc = s % 1000 + 1;  // same on all ranks, so next round agrees
    }
  });
}

TEST_P(StormTest, PointToPointAroundBarriers) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  Runtime rt(p, CostModel{});
  rt.run([&](Communicator& comm) {
    for (int round = 0; round < 10; ++round) {
      const int next = (comm.rank() + 1) % p;
      const int prev = (comm.rank() + p - 1) % p;
      BufWriter w;
      w.put<std::uint32_t>(static_cast<std::uint32_t>(round * p + comm.rank()));
      comm.send(next, 5, w.take());
      Message m = comm.recv(prev, 5);
      BufReader r(m.payload);
      EXPECT_EQ(r.get<std::uint32_t>(),
                static_cast<std::uint32_t>(round * p + prev));
      comm.barrier();
    }
  });
}

TEST_P(StormTest, BroadcastRandomBuffers) {
  const int p = GetParam();
  Runtime rt(p, CostModel{});
  rt.run([&](Communicator& comm) {
    Prng rng(7);  // same stream everywhere: predictable expected content
    for (int round = 0; round < 5; ++round) {
      std::size_t len = 1 + rng.uniform(2000);
      Buffer expected(len);
      for (auto& b : expected) {
        b = static_cast<std::uint8_t>(rng.uniform(256));
      }
      Buffer got = comm.broadcast(comm.rank() == 0 ? expected : Buffer{});
      ASSERT_EQ(got, expected) << "round " << round;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, StormTest,
                         testing::Values(1, 2, 3, 5, 8, 13));

TEST(VirtualClockInvariants, TimeNeverDecreases) {
  Runtime rt(4, CostModel{});
  rt.run([&](Communicator& comm) {
    double last = comm.clock().time();
    auto check = [&] {
      EXPECT_GE(comm.clock().time(), last);
      last = comm.clock().time();
    };
    comm.barrier();
    check();
    comm.allreduce_sum(std::uint64_t{1});
    check();
    if (comm.rank() == 0) {
      comm.send(1, 0, Buffer(100));
      check();
    }
    if (comm.rank() == 1) {
      comm.recv(0, 0);
      check();
    }
    comm.barrier();
    check();
  });
}

TEST(VirtualClockInvariants, BusyNeverExceedsElapsed) {
  Runtime rt(3, CostModel{});
  rt.run([&](Communicator& comm) {
    comm.charge(1e-6, 100);
    comm.barrier();
    EXPECT_LE(comm.clock().busy_time(), comm.clock().time() + 1e-12);
  });
}

TEST(VirtualClockInvariants, DeterministicAcrossRealRuns) {
  // The same communication pattern must produce the same virtual times no
  // matter how the OS schedules the threads.
  auto run_once = [] {
    Runtime rt(6, CostModel{});
    rt.run([&](Communicator& comm) {
      for (int i = 0; i < 10; ++i) {
        comm.charge(1e-6, (comm.rank() + 1) * 10);
        comm.allreduce_max(static_cast<double>(comm.rank()));
      }
    });
    return rt.elapsed_vtime();
  };
  double a = run_once();
  double b = run_once();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(LargePayloads, MegabyteMessagesSurvive) {
  Runtime rt(2, CostModel{});
  rt.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      Buffer big(4 << 20, 0xAB);
      comm.send(1, 0, std::move(big));
    } else {
      Message m = comm.recv(0, 0);
      EXPECT_EQ(m.payload.size(), std::size_t{4 << 20});
      EXPECT_EQ(m.payload[12345], 0xAB);
    }
  });
}

}  // namespace
}  // namespace estclust::mpr
