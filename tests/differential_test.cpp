// Differential tests for the alignment hot-path engine.
//
// Three oracles pin the engine down:
//
//  1. A verbatim copy of the pre-arena banded kernels (the implementation
//     the blocked kernel replaced) — the new kernel must reproduce its
//     scores, spans, tie-breaks AND cell counts bit-for-bit over a large
//     randomized corpus, because the modeled run-times charge per cell.
//  2. The exact anchored aligner vs the bounded one: a non-truncated
//     bounded result is identical in every field; a truncated one must
//     correspond to an exact result that accept_overlap rejects (the
//     early exit only fires when rejection is provable).
//  3. Whole-pipeline agreement: pace::cluster_sequential,
//     pace::cluster_parallel and baseline::cluster_baseline produce the
//     same canonical partition on simulated data when configured over the
//     same candidate criterion (shared k-mer of length psi <=> maximal
//     common substring >= psi).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "align/banded.hpp"
#include "align/kernel.hpp"
#include "baseline/greedy.hpp"
#include "bio/alphabet.hpp"
#include "mpr/runtime.hpp"
#include "pace/parallel.hpp"
#include "pace/sequential.hpp"
#include "sim/workload.hpp"
#include "util/prng.hpp"

namespace estclust {
namespace {

constexpr long kNegInf = std::numeric_limits<long>::min() / 4;

// ---------------------------------------------------------------------------
// Oracle: the pre-arena banded kernels, copied verbatim from the previous
// implementation of src/align/banded.cpp. Do not "improve" these — their
// whole value is that they are the old code.
// ---------------------------------------------------------------------------

align::ExtensionResult legacy_extend_overlap(std::string_view a,
                                             std::string_view b,
                                             const align::Scoring& sc,
                                             std::size_t band) {
  const std::size_t m = a.size(), n = b.size();
  align::ExtensionResult best;
  best.score = kNegInf;

  if (m == 0 || n == 0) {
    best.score = 0;
    best.a_len = 0;
    best.b_len = 0;
    best.a_exhausted = (m == 0);
    best.b_exhausted = (n == 0);
    return best;
  }

  const std::size_t width = 2 * band + 1;
  std::vector<long> prev(width, kNegInf), cur(width, kNegInf);
  std::uint64_t cells = 0;

  auto consider = [&](long score, std::size_t i, std::size_t j) {
    if (i != m && j != n) return;
    if (score > best.score ||
        (score == best.score && i + j > best.a_len + best.b_len)) {
      best.score = score;
      best.a_len = i;
      best.b_len = j;
      best.a_exhausted = (i == m);
      best.b_exhausted = (j == n);
    }
  };

  for (std::size_t j = 0; j <= std::min(n, band); ++j) {
    prev[j - 0 + band] = static_cast<long>(j) * sc.gap;
    consider(prev[j + band], 0, j);
  }

  for (std::size_t i = 1; i <= m; ++i) {
    std::fill(cur.begin(), cur.end(), kNegInf);
    const std::size_t jlo = (i > band) ? i - band : 0;
    const std::size_t jhi = std::min(n, i + band);
    if (jlo > n) break;
    for (std::size_t j = jlo; j <= jhi; ++j) {
      const std::size_t k = j - i + band;
      long v = kNegInf;
      if (j > 0 && prev[k] != kNegInf) {
        v = prev[k] + (a[i - 1] == b[j - 1] ? sc.match : sc.mismatch);
      }
      if (k + 1 < width && prev[k + 1] != kNegInf) {
        v = std::max(v, prev[k + 1] + sc.gap);
      }
      if (k > 0 && cur[k - 1] != kNegInf) {
        v = std::max(v, cur[k - 1] + sc.gap);
      }
      cur[k] = v;
      ++cells;
      if (v != kNegInf) consider(v, i, j);
    }
    std::swap(prev, cur);
  }

  best.cells = cells;
  return best;
}

long legacy_banded_global_score(std::string_view a, std::string_view b,
                                const align::Scoring& sc, std::size_t band,
                                std::uint64_t* cells_out) {
  const std::size_t m = a.size(), n = b.size();
  const std::size_t diff = m > n ? m - n : n - m;
  if (diff > band) {
    if (cells_out) *cells_out = 0;
    return kNegInf;
  }
  const std::size_t width = 2 * band + 1;
  std::vector<long> prev(width, kNegInf), cur(width, kNegInf);
  std::uint64_t cells = 0;

  for (std::size_t j = 0; j <= std::min(n, band); ++j) {
    prev[j + band] = static_cast<long>(j) * sc.gap;
  }
  for (std::size_t i = 1; i <= m; ++i) {
    std::fill(cur.begin(), cur.end(), kNegInf);
    const std::size_t jlo = (i > band) ? i - band : 0;
    const std::size_t jhi = std::min(n, i + band);
    for (std::size_t j = jlo; j <= jhi; ++j) {
      const std::size_t k = j - i + band;
      long v = kNegInf;
      if (j > 0 && prev[k] != kNegInf) {
        v = prev[k] + (a[i - 1] == b[j - 1] ? sc.match : sc.mismatch);
      }
      if (k + 1 < width && prev[k + 1] != kNegInf) {
        v = std::max(v, prev[k + 1] + sc.gap);
      }
      if (k > 0 && cur[k - 1] != kNegInf) {
        v = std::max(v, cur[k - 1] + sc.gap);
      }
      cur[k] = v;
      ++cells;
    }
    std::swap(prev, cur);
  }
  if (cells_out) *cells_out = cells;
  return prev[n - m + band];
}

// ---------------------------------------------------------------------------

std::string random_dna(Prng& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = bio::decode_base(static_cast<int>(rng.uniform(4)));
  return s;
}

std::string mutate(Prng& rng, const std::string& s, double sub, double ins,
                   double del) {
  std::string out;
  for (char c : s) {
    if (rng.bernoulli(del)) continue;
    if (rng.bernoulli(ins)) {
      out.push_back(bio::decode_base(static_cast<int>(rng.uniform(4))));
    }
    if (rng.bernoulli(sub)) {
      out.push_back(bio::decode_base(
          (bio::encode_base(c) + 1 + static_cast<int>(rng.uniform(3))) % 4));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

TEST(KernelDifferential, BlockedSweepMatchesLegacyOver10kPairs) {
  // 10,000 randomized (a, b, band) triples: related pairs (mutated copies)
  // and unrelated pairs, degenerate lengths included. Everything the old
  // kernel reported must be reproduced exactly — including `cells`, which
  // feeds the virtual-time model.
  Prng rng(0xE57C1057);
  const align::Scoring sc;
  align::AlignArena arena;
  const std::size_t bands[] = {1, 2, 4, 8, 16};
  for (int iter = 0; iter < 10000; ++iter) {
    std::string a = random_dna(rng, rng.uniform(61));
    std::string b = rng.bernoulli(0.5)
                        ? mutate(rng, a, 0.08, 0.03, 0.03)
                        : random_dna(rng, rng.uniform(61));
    const std::size_t band = bands[rng.uniform(5)];

    auto legacy = legacy_extend_overlap(a, b, sc, band);
    auto blocked = align::extend_overlap(a, b, sc, band, arena);
    ASSERT_EQ(blocked.score, legacy.score) << "iter " << iter;
    ASSERT_EQ(blocked.a_len, legacy.a_len) << "iter " << iter;
    ASSERT_EQ(blocked.b_len, legacy.b_len) << "iter " << iter;
    ASSERT_EQ(blocked.a_exhausted, legacy.a_exhausted) << "iter " << iter;
    ASSERT_EQ(blocked.b_exhausted, legacy.b_exhausted) << "iter " << iter;
    ASSERT_EQ(blocked.cells, legacy.cells) << "iter " << iter;
    ASSERT_FALSE(blocked.capped) << "iter " << iter;

    // The arena-less public wrapper must agree too.
    auto wrapper = align::extend_overlap(a, b, sc, band);
    ASSERT_EQ(wrapper.score, legacy.score) << "iter " << iter;
    ASSERT_EQ(wrapper.cells, legacy.cells) << "iter " << iter;

    std::uint64_t legacy_cells = 0, blocked_cells = 0;
    const long lg =
        legacy_banded_global_score(a, b, sc, band, &legacy_cells);
    const long bg =
        align::banded_global_score(a, b, sc, band, arena, &blocked_cells);
    ASSERT_EQ(bg, lg) << "iter " << iter;
    ASSERT_EQ(blocked_cells, legacy_cells) << "iter " << iter;
  }
}

TEST(KernelDifferential, BlockedSweepMatchesFullMatrixReference) {
  // With the band covering the whole rectangle, the blocked sweep must
  // reproduce the O(mn) reference oracle.
  Prng rng(0xBADBA9D);
  const align::Scoring sc;
  align::AlignArena arena;
  for (int iter = 0; iter < 500; ++iter) {
    std::string a = random_dna(rng, rng.uniform(40));
    std::string b = rng.bernoulli(0.5) ? mutate(rng, a, 0.1, 0.05, 0.05)
                                       : random_dna(rng, rng.uniform(40));
    auto ref = align::extend_overlap_reference(a, b, sc);
    auto blocked =
        align::extend_overlap(a, b, sc, a.size() + b.size() + 1, arena);
    ASSERT_EQ(blocked.score, ref.score) << "iter " << iter;
    ASSERT_EQ(blocked.a_len, ref.a_len) << "iter " << iter;
    ASSERT_EQ(blocked.b_len, ref.b_len) << "iter " << iter;
  }
}

TEST(KernelDifferential, SimdVariantsMatchScalarAcrossRegimes) {
  // Every kernel variant the host supports must reproduce the scalar sweep
  // bit for bit — score, end positions, exhaustion flags, the capped flag
  // AND the cell count (which feeds the virtual-time model) — across
  // bands, lengths and give-up regimes. Lengths run past 2 * 16 lanes so
  // both the scalar-head and multi-chunk code paths are hit for SSE2 and
  // AVX2; bands include 0 (head-only rows) and values far above the lane
  // count.
  std::vector<align::KernelVariant> variants;
  for (auto v : {align::KernelVariant::kSse2, align::KernelVariant::kAvx2}) {
    if (align::cpu_supports(v)) variants.push_back(v);
  }
  if (variants.empty()) GTEST_SKIP() << "host has no SIMD kernels";

  Prng rng(0x51D0D1FF);
  const align::Scoring sc;
  align::AlignArena arena;
  const std::size_t bands[] = {0, 1, 2, 3, 5, 8, 16, 33};
  int capped_seen = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::string a = random_dna(rng, rng.uniform(250));
    std::string b = rng.bernoulli(0.5)
                        ? mutate(rng, a, 0.08, 0.03, 0.03)
                        : random_dna(rng, rng.uniform(250));
    const std::size_t band = bands[rng.uniform(8)];
    // Give-up regimes: exact, a loose bound that rarely fires, a bound in
    // the plausible-score range, and one the pre-check rejects instantly.
    long give_up = align::kNoGiveUp;
    switch (iter % 4) {
      case 1:
        give_up = -10000;
        break;
      case 2:
        give_up = static_cast<long>(rng.uniform(200)) - 100;
        break;
      case 3:
        give_up =
            sc.match * static_cast<long>(std::min(a.size(), b.size()) + 1);
        break;
      default:
        break;
    }

    const auto scalar = align::extend_overlap_variant(
        align::KernelVariant::kScalar, a, b, sc, band, arena, give_up);
    if (scalar.capped) ++capped_seen;
    for (const align::KernelVariant v : variants) {
      const auto simd =
          align::extend_overlap_variant(v, a, b, sc, band, arena, give_up);
      ASSERT_EQ(simd.score, scalar.score)
          << align::to_string(v) << " iter " << iter << " band " << band
          << " give_up " << give_up;
      ASSERT_EQ(simd.a_len, scalar.a_len)
          << align::to_string(v) << " iter " << iter;
      ASSERT_EQ(simd.b_len, scalar.b_len)
          << align::to_string(v) << " iter " << iter;
      ASSERT_EQ(simd.a_exhausted, scalar.a_exhausted)
          << align::to_string(v) << " iter " << iter;
      ASSERT_EQ(simd.b_exhausted, scalar.b_exhausted)
          << align::to_string(v) << " iter " << iter;
      ASSERT_EQ(simd.cells, scalar.cells)
          << align::to_string(v) << " iter " << iter << " band " << band
          << " give_up " << give_up;
      ASSERT_EQ(simd.capped, scalar.capped)
          << align::to_string(v) << " iter " << iter;
    }
  }
  // The corpus must actually exercise the give-up machinery.
  EXPECT_GT(capped_seen, 100);
}

TEST(BoundedDifferential, TruncationImpliesRejectionOtherwiseIdentical) {
  // Overlapping pairs built around an exact common core so the anchor
  // precondition holds; flanks range from perfect copies to unrelated
  // junk, covering accept, borderline and clear-reject cases.
  Prng rng(0x0B07D3D);
  align::OverlapParams p;
  p.band = 8;
  p.min_quality = 0.75;
  p.min_overlap = 40;
  align::AlignArena arena;
  std::uint64_t truncated = 0, accepted = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    const std::string core = random_dna(rng, 20 + rng.uniform(20));
    std::string left = random_dna(rng, rng.uniform(80));
    std::string right = random_dna(rng, rng.uniform(80));
    std::string a = left + core + right;
    std::string b;
    align::Anchor anchor;
    if (rng.bernoulli(0.6)) {
      // True overlap: b shares (mutated) flanks with a.
      const double err = rng.bernoulli(0.5) ? 0.02 : 0.12;
      std::string bl = mutate(rng, left, err, err / 4, err / 4);
      std::string br = mutate(rng, right, err, err / 4, err / 4);
      b = bl + core + br;
      anchor = {left.size(), bl.size(), core.size()};
    } else {
      // Spurious seed: unrelated flanks around the same core.
      std::string bl = random_dna(rng, rng.uniform(80));
      b = bl + core + random_dna(rng, rng.uniform(80));
      anchor = {left.size(), bl.size(), core.size()};
    }

    auto exact = align::align_anchored(a, b, anchor, p, arena);
    auto bounded = align::align_anchored_bounded(a, b, anchor, p, arena);

    if (bounded.truncated) {
      ++truncated;
      ASSERT_FALSE(align::accept_overlap(exact, p))
          << "iter " << iter << ": truncated a pair the exact path accepts";
    } else {
      ASSERT_EQ(bounded.score, exact.score) << "iter " << iter;
      ASSERT_EQ(bounded.quality, exact.quality) << "iter " << iter;
      ASSERT_EQ(bounded.kind, exact.kind) << "iter " << iter;
      ASSERT_EQ(bounded.a_begin, exact.a_begin) << "iter " << iter;
      ASSERT_EQ(bounded.a_end, exact.a_end) << "iter " << iter;
      ASSERT_EQ(bounded.b_begin, exact.b_begin) << "iter " << iter;
      ASSERT_EQ(bounded.b_end, exact.b_end) << "iter " << iter;
      ASSERT_EQ(bounded.cells, exact.cells) << "iter " << iter;
    }
    ASSERT_EQ(align::accept_overlap(bounded, p),
              align::accept_overlap(exact, p))
        << "iter " << iter;
    if (align::accept_overlap(exact, p)) ++accepted;
  }
  // The corpus must actually exercise both regimes.
  EXPECT_GT(truncated, 100u);
  EXPECT_GT(accepted, 100u);
}

// ---------------------------------------------------------------------------

std::string canonical_partition(const std::vector<std::uint32_t>& labels) {
  std::vector<std::vector<std::uint32_t>> clusters;
  std::vector<std::int64_t> slot(labels.size(), -1);
  for (std::uint32_t i = 0; i < labels.size(); ++i) {
    std::int64_t& s = slot[labels[i]];
    if (s < 0) {
      s = static_cast<std::int64_t>(clusters.size());
      clusters.emplace_back();
    }
    clusters[static_cast<std::size_t>(s)].push_back(i);
  }
  std::sort(clusters.begin(), clusters.end());
  std::ostringstream out;
  for (const auto& c : clusters) {
    for (std::size_t i = 0; i < c.size(); ++i) out << (i ? " " : "") << c[i];
    out << '\n';
  }
  return out.str();
}

class PipelineDifferential : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineDifferential, SequentialParallelAndBaselineAgree) {
  // Error-free reads: every promising pair aligns perfectly from any
  // anchor, so the three engines — despite different candidate orders and
  // anchors — must find the same acceptance graph components.
  sim::SimConfig sim;
  sim.num_genes = 5;
  sim.num_ests = 70;
  sim.est_len_mean = 200;
  sim.est_len_stddev = 30;
  sim.est_len_min = 80;
  sim.sub_rate = sim.ins_rate = sim.del_rate = 0.0;
  sim.seed = GetParam();
  auto wl = sim::generate(sim);

  pace::PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 24;
  cfg.batchsize = 20;
  cfg.overlap.band = 8;
  cfg.overlap.min_quality = 0.75;
  cfg.overlap.min_overlap = 40;

  const std::string seq =
      canonical_partition(cluster_sequential(wl.ests, cfg).clusters.labels());

  // Parallel at several rank counts.
  for (int p : {2, 4, 8}) {
    mpr::Runtime rt(p, mpr::CostModel{});
    std::vector<std::uint32_t> labels;
    std::mutex mu;
    rt.run([&](mpr::Communicator& comm) {
      auto res = pace::cluster_parallel(comm, wl.ests, cfg);
      std::lock_guard<std::mutex> lock(mu);
      if (comm.rank() == 0) labels = res.labels;
    });
    EXPECT_EQ(canonical_partition(labels), seq)
        << "p=" << p << " seed=" << GetParam();
  }

  // Baseline greedy over the same candidate criterion: a shared k-mer of
  // length psi exists iff a maximal common substring of length >= psi
  // does, so candidate sets coincide; on clean data every candidate's
  // verdict is anchor-independent.
  baseline::BaselineConfig bcfg;
  bcfg.kmer = cfg.psi;
  bcfg.overlap = cfg.overlap;
  bcfg.full_dp = false;
  bcfg.cluster_skip = false;
  bcfg.max_kmer_occ = 100000;  // no repeat masking: keep candidate parity
  auto base = baseline::cluster_baseline(wl.ests, bcfg);
  ASSERT_FALSE(base.stats.out_of_memory);
  EXPECT_EQ(canonical_partition(base.clusters.labels()), seq)
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineDifferential,
                         testing::Values(101, 202, 303));

}  // namespace
}  // namespace estclust
