#include <gtest/gtest.h>

#include "cluster/union_find.hpp"
#include "util/prng.hpp"

namespace estclust::cluster {
namespace {

TEST(UnionFind, StartsFullyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_clusters(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.cluster_size(i), 1u);
  }
}

TEST(UnionFind, UniteMergesAndReportsNovelty) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already merged
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.num_clusters(), 3u);
  EXPECT_EQ(uf.cluster_size(1), 2u);
}

TEST(UnionFind, TransitiveMerges) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same(0, 3));
  EXPECT_EQ(uf.cluster_size(0), 4u);
  EXPECT_EQ(uf.num_clusters(), 3u);  // {0,1,2,3}, {4}, {5}
}

TEST(UnionFind, LabelsAreSmallestMember) {
  UnionFind uf(5);
  uf.unite(3, 1);
  uf.unite(4, 3);
  auto labels = uf.labels();
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[3], 1u);
  EXPECT_EQ(labels[4], 1u);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[2], 2u);
}

TEST(UnionFind, LabelsInvariantUnderMergeOrder) {
  // The same partition reached through different union sequences must give
  // identical labels.
  UnionFind a(6), b(6);
  a.unite(0, 5);
  a.unite(5, 2);
  b.unite(2, 5);
  b.unite(0, 2);
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(UnionFind, ExtractClustersPartitionsAll) {
  UnionFind uf(7);
  uf.unite(0, 2);
  uf.unite(4, 5);
  uf.unite(5, 6);
  auto clusters = uf.extract_clusters();
  std::size_t total = 0;
  for (const auto& c : clusters) total += c.size();
  EXPECT_EQ(total, 7u);
  EXPECT_EQ(clusters.size(), uf.num_clusters());
  // Ordered by smallest member; members sorted.
  EXPECT_EQ(clusters[0][0], 0u);
  for (const auto& c : clusters) {
    for (std::size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i - 1], c[i]);
  }
}

TEST(UnionFind, SingleElement) {
  UnionFind uf(1);
  EXPECT_EQ(uf.find(0), 0u);
  EXPECT_FALSE(uf.unite(0, 0));
  EXPECT_EQ(uf.num_clusters(), 1u);
}

TEST(UnionFind, OperationsCounterGrows) {
  UnionFind uf(10);
  auto before = uf.operations();
  uf.unite(0, 1);
  uf.find(5);
  EXPECT_GT(uf.operations(), before);
}

TEST(UnionFind, LargeRandomMatchesNaive) {
  // Compare against a naive label-propagation partition.
  Prng rng(1);
  const std::uint32_t n = 300;
  UnionFind uf(n);
  std::vector<std::uint32_t> naive(n);
  for (std::uint32_t i = 0; i < n; ++i) naive[i] = i;
  auto naive_find = [&](std::uint32_t x) {
    while (naive[x] != x) x = naive[x];
    return x;
  };
  for (int k = 0; k < 400; ++k) {
    std::uint32_t a = static_cast<std::uint32_t>(rng.uniform(n));
    std::uint32_t b = static_cast<std::uint32_t>(rng.uniform(n));
    uf.unite(a, b);
    naive[naive_find(a)] = naive_find(b);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < i + 5 && j < n; ++j) {
      EXPECT_EQ(uf.same(i, j), naive_find(i) == naive_find(j));
    }
  }
}

TEST(UnionFind, ClusterCountConsistentWithExtract) {
  Prng rng(2);
  UnionFind uf(50);
  for (int k = 0; k < 30; ++k) {
    uf.unite(static_cast<std::uint32_t>(rng.uniform(50)),
             static_cast<std::uint32_t>(rng.uniform(50)));
  }
  EXPECT_EQ(uf.extract_clusters().size(), uf.num_clusters());
}

}  // namespace
}  // namespace estclust::cluster
