#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "bio/alphabet.hpp"
#include "bio/dataset.hpp"
#include "bio/fasta.hpp"
#include "bio/sequence.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace estclust::bio {
namespace {

std::string random_dna(Prng& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = decode_base(static_cast<int>(rng.uniform(4)));
  return s;
}

TEST(Alphabet, EncodeDecodeRoundTrip) {
  for (int c = 0; c < kSigma; ++c) {
    EXPECT_EQ(encode_base(decode_base(c)), c);
  }
}

TEST(Alphabet, CodesAreLexicographic) {
  EXPECT_LT(encode_base('A'), encode_base('C'));
  EXPECT_LT(encode_base('C'), encode_base('G'));
  EXPECT_LT(encode_base('G'), encode_base('T'));
}

TEST(Alphabet, LowercaseAccepted) {
  EXPECT_EQ(encode_base('a'), encode_base('A'));
  EXPECT_EQ(encode_base('t'), encode_base('T'));
}

TEST(Alphabet, InvalidCharactersRejected) {
  EXPECT_EQ(encode_base('N'), -1);
  EXPECT_EQ(encode_base('$'), -1);
  EXPECT_FALSE(is_valid_base('x'));
}

TEST(Alphabet, ComplementIsWatsonCrick) {
  EXPECT_EQ(complement_base('A'), 'T');
  EXPECT_EQ(complement_base('T'), 'A');
  EXPECT_EQ(complement_base('C'), 'G');
  EXPECT_EQ(complement_base('G'), 'C');
}

TEST(Alphabet, LambdaCodeIsOutsideSigma) {
  EXPECT_EQ(kLambdaCode, kSigma);
  EXPECT_EQ(kNumLsetCodes, 5);
}

TEST(ReverseComplement, KnownExample) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(reverse_complement("AACG"), "CGTT");
  EXPECT_EQ(reverse_complement("A"), "T");
}

TEST(ReverseComplement, EmptyString) {
  EXPECT_EQ(reverse_complement(""), "");
}

TEST(ReverseComplement, IsAnInvolution) {
  Prng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::string s = random_dna(rng, 1 + rng.uniform(200));
    EXPECT_EQ(reverse_complement(reverse_complement(s)), s);
  }
}

TEST(ReverseComplement, PreservesLength) {
  Prng rng(2);
  std::string s = random_dna(rng, 137);
  EXPECT_EQ(reverse_complement(s).size(), s.size());
}

TEST(NormalizeBases, UppercasesAndValidates) {
  EXPECT_EQ(normalize_bases("acgT"), "ACGT");
  EXPECT_THROW(normalize_bases("ACNGT"), CheckError);
}

TEST(PackedSeq, RoundTripsArbitrarySequences) {
  Prng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::string s = random_dna(rng, rng.uniform(300));
    PackedSeq p(s);
    EXPECT_EQ(p.size(), s.size());
    EXPECT_EQ(p.unpack(), s);
  }
}

TEST(PackedSeq, PerBaseAccess) {
  PackedSeq p("GATTACA");
  EXPECT_EQ(p.at(0), 'G');
  EXPECT_EQ(p.at(3), 'T');
  EXPECT_EQ(p.at(6), 'A');
  EXPECT_EQ(p.code_at(1), encode_base('A'));
}

TEST(PackedSeq, UsesQuarterByteStorage) {
  std::string s(1024, 'C');
  PackedSeq p(s);
  EXPECT_LE(p.storage_bytes(), 1024 / 4 + 16);
}

TEST(PackedSeq, CrossesWordBoundaries) {
  Prng rng(4);
  std::string s = random_dna(rng, 67);  // spans three 32-base words
  PackedSeq p(s);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(p.at(i), s[i]);
}

TEST(PackedView, UnpackCodesRoundTripsAwkwardLengths) {
  // Lengths straddling the 32-base word and the table-driven 4-base quad
  // boundaries: the unpacked byte codes must equal encode_base at every
  // position.
  Prng rng(5);
  std::vector<std::uint64_t> scratch;
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{4}, std::size_t{31}, std::size_t{32},
                          std::size_t{33}, std::size_t{63}, std::size_t{64},
                          std::size_t{65}, std::size_t{130}}) {
    const std::string s = random_dna(rng, len);
    PackedView v = pack_2bit(s, scratch);
    ASSERT_EQ(v.size(), len);
    std::vector<std::uint8_t> codes(len + 1, 0xAA);  // +1 canary
    v.unpack_codes(codes.data());
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(static_cast<int>(codes[i]), encode_base(s[i]))
          << "len " << len << " pos " << i;
      ASSERT_EQ(codes[i], static_cast<std::uint8_t>(v.code_at(i)))
          << "len " << len << " pos " << i;
    }
    // unpack_codes writes exactly size() bytes.
    EXPECT_EQ(codes[len], 0xAA) << "len " << len;
  }
}

TEST(PackedView, ScratchReuseAcrossShrinkingCalls) {
  // The scratch-vector form exists so hot-path callers reuse one heap
  // allocation; a shorter pack after a longer one must not see stale
  // high words.
  Prng rng(6);
  std::vector<std::uint64_t> scratch;
  const std::string big = random_dna(rng, 200);
  pack_2bit(big, scratch);
  const std::string small = random_dna(rng, 33);
  PackedView v = pack_2bit(small, scratch);
  std::vector<std::uint8_t> codes(v.size());
  v.unpack_codes(codes.data());
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(static_cast<int>(codes[i]), encode_base(small[i])) << i;
  }
}

TEST(PackedView, PackRejectsInvalidBases) {
  std::vector<std::uint64_t> scratch;
  EXPECT_THROW(pack_2bit("ACNT", scratch), CheckError);
}

TEST(PackedSeq, ViewAgreesWithPerBaseAccess) {
  Prng rng(7);
  const std::string s = random_dna(rng, 75);
  PackedSeq p(s);
  PackedView v = p.view();
  ASSERT_EQ(v.size(), s.size());
  std::vector<std::uint8_t> codes(v.size());
  v.unpack_codes(codes.data());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(v.code_at(i), p.code_at(i)) << i;
    EXPECT_EQ(static_cast<int>(codes[i]), p.code_at(i)) << i;
  }
}

TEST(Fasta, ParsesMultiRecordInput) {
  std::istringstream in(">e1 desc ignored\nACGT\nACGT\n>e2\nTTTT\n");
  auto seqs = read_fasta(in);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].id, "e1");
  EXPECT_EQ(seqs[0].bases, "ACGTACGT");
  EXPECT_EQ(seqs[1].id, "e2");
  EXPECT_EQ(seqs[1].bases, "TTTT");
}

TEST(Fasta, HandlesCrLfAndBlankLines) {
  std::istringstream in(">a\r\nAC\r\n\r\nGT\r\n");
  auto seqs = read_fasta(in);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].bases, "ACGT");
}

TEST(Fasta, LowercaseNormalized) {
  std::istringstream in(">a\nacgt\n");
  auto seqs = read_fasta(in);
  EXPECT_EQ(seqs[0].bases, "ACGT");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>a\nACGT\n");
  EXPECT_THROW(read_fasta(in), CheckError);
}

TEST(Fasta, RejectsInvalidBases) {
  std::istringstream in(">a\nACNT\n");
  EXPECT_THROW(read_fasta(in), CheckError);
}

TEST(Fasta, EmptyInputYieldsNoRecords) {
  std::istringstream in("");
  EXPECT_TRUE(read_fasta(in).empty());
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<Sequence> seqs = {{"x", "ACGTACGTACGT"}, {"y", "TT"}};
  std::ostringstream out;
  write_fasta(out, seqs, 5);  // force wrapping
  std::istringstream in(out.str());
  auto back = read_fasta(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, seqs[0].id);
  EXPECT_EQ(back[0].bases, seqs[0].bases);
  EXPECT_EQ(back[1].bases, seqs[1].bases);
}

TEST(Fasta, FileRoundTrip) {
  std::string path = testing::TempDir() + "/estclust_fasta_test.fa";
  std::vector<Sequence> seqs = {{"r1", "GATTACA"}};
  write_fasta_file(path, seqs);
  auto back = read_fasta_file(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].bases, "GATTACA");
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/path/foo.fa"), CheckError);
}

TEST(EstSet, BasicAccounting) {
  EstSet set({{"a", "ACGT"}, {"b", "GG"}});
  EXPECT_EQ(set.num_ests(), 2u);
  EXPECT_EQ(set.num_strings(), 4u);
  EXPECT_EQ(set.total_est_chars(), 6u);
  EXPECT_EQ(set.total_string_chars(), 12u);
  EXPECT_DOUBLE_EQ(set.average_length(), 3.0);
}

TEST(EstSet, EmptySet) {
  EstSet set;
  EXPECT_EQ(set.num_ests(), 0u);
  EXPECT_DOUBLE_EQ(set.average_length(), 0.0);
}

TEST(EstSet, StringIdsInterleaveForwardAndRc) {
  EstSet set(std::vector<Sequence>{{"a", "AACG"}});
  EXPECT_EQ(set.str(0), "AACG");
  EXPECT_EQ(set.str(1), "CGTT");
  EXPECT_FALSE(EstSet::is_rc(0));
  EXPECT_TRUE(EstSet::is_rc(1));
  EXPECT_EQ(EstSet::est_of(0), 0u);
  EXPECT_EQ(EstSet::est_of(1), 0u);
  EXPECT_EQ(EstSet::mate(0), 1u);
  EXPECT_EQ(EstSet::mate(1), 0u);
  EXPECT_EQ(EstSet::forward_sid(0), 0u);
  EXPECT_EQ(EstSet::rc_sid(0), 1u);
}

TEST(EstSet, SecondEstSids) {
  EstSet set({{"a", "AAAA"}, {"b", "ACGG"}});
  EXPECT_EQ(set.str(2), "ACGG");
  EXPECT_EQ(set.str(3), "CCGT");
  EXPECT_EQ(EstSet::est_of(3), 1u);
}

TEST(EstSet, RejectsEmptyEst) {
  EXPECT_THROW(EstSet(std::vector<Sequence>{{"a", ""}}), CheckError);
}

TEST(EstSet, RejectsInvalidBases) {
  EXPECT_THROW(EstSet(std::vector<Sequence>{{"a", "ACNT"}}), CheckError);
}

}  // namespace
}  // namespace estclust::bio
