// Pair-stream contract tests, instantiated once per PairSource backend by
// tests/CMakeLists.txt (add_pairsource_test): the same binary compiles
// with ESTCLUST_PAIRSOURCE_BACKEND set to "gst", "kmer" or "fm" and every
// interface-level property below must hold for all of them. A handful of
// GST-internal guarantees (lset space bounds, Corollary 2) skip on the
// other backends.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "bio/alphabet.hpp"
#include "bio/dataset.hpp"
#include "gst/builder.hpp"
#include "pairgen/generator.hpp"
#include "pairgen/source.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

#ifndef ESTCLUST_PAIRSOURCE_BACKEND
#define ESTCLUST_PAIRSOURCE_BACKEND "gst"
#endif

namespace estclust::pairgen {
namespace {

using bio::EstSet;
using bio::Sequence;

Backend test_backend() {
  auto b = parse_backend(ESTCLUST_PAIRSOURCE_BACKEND);
  EXPECT_TRUE(b.has_value());
  return b.value_or(Backend::kGst);
}

bool gst_backend() { return test_backend() == Backend::kGst; }

/// The backend under test over `forest`'s bucket share (w = the window
/// the forest was built with).
std::unique_ptr<PairSource> make_source(const EstSet& ests,
                                        const std::vector<gst::Tree>& forest,
                                        std::uint32_t w, std::uint32_t psi) {
  return make_pair_source(test_backend(), ests, forest, w, psi);
}

std::string random_dna(Prng& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = bio::decode_base(static_cast<int>(rng.uniform(4)));
  return s;
}

/// Longest common substring length (reference DP).
std::size_t lcs_len(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  std::size_t best = 0;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = 0;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      cur[j] = (a[i - 1] == b[j - 1]) ? prev[j - 1] + 1 : 0;
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  return best;
}

/// All *distinct* maximal common substrings of length >= minlen.
std::set<std::string> maximal_common_substrings(std::string_view a,
                                                std::string_view b,
                                                std::size_t minlen) {
  std::set<std::string> out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (a[i] != b[j]) continue;
      // Left-maximal start?
      if (i > 0 && j > 0 && a[i - 1] == b[j - 1]) continue;
      std::size_t len = 0;
      while (i + len < a.size() && j + len < b.size() &&
             a[i + len] == b[j + len]) {
        ++len;
      }
      if (len >= minlen) out.insert(std::string(a.substr(i, len)));
    }
  }
  return out;
}

/// Generates ESTs with deliberate overlap structure: windows of a shared
/// "gene" string, some reverse complemented, plus unrelated noise ESTs.
EstSet overlap_ests(Prng& rng, std::size_t n_related, std::size_t n_noise,
                    std::size_t gene_len = 220, std::size_t est_len = 80) {
  std::string gene = random_dna(rng, gene_len);
  std::vector<Sequence> seqs;
  for (std::size_t i = 0; i < n_related; ++i) {
    std::size_t start = rng.uniform(gene_len - est_len);
    std::string est = gene.substr(start, est_len);
    if (rng.bernoulli(0.4)) est = bio::reverse_complement(est);
    seqs.push_back({"r" + std::to_string(i), est});
  }
  for (std::size_t i = 0; i < n_noise; ++i) {
    seqs.push_back({"n" + std::to_string(i), random_dna(rng, est_len)});
  }
  return EstSet(std::move(seqs));
}

std::vector<PromisingPair> drain(PairSource& gen,
                                 std::size_t batch = 1000000) {
  std::vector<PromisingPair> out;
  while (gen.next_batch(batch, out) > 0) {
  }
  return out;
}

TEST(PairSource, RequiresPsiAtLeastWindow) {
  EstSet ests(std::vector<Sequence>{{"a", "ACGTACGTACGT"}});
  auto forest = gst::build_forest_sequential(ests, 4);
  EXPECT_THROW(make_source(ests, forest, 4, 3), CheckError);
}

TEST(PairSource, EmitsSharedSubstringPair) {
  // Two ESTs overlap in a 20-base core.
  Prng rng(1);
  std::string core = random_dna(rng, 20);
  EstSet ests({{"a", random_dna(rng, 30) + core},
               {"b", core + random_dna(rng, 30)}});
  auto forest = gst::build_forest_sequential(ests, 4);
  auto gen = make_source(ests, forest, 4, 10);
  auto pairs = drain(*gen);
  ASSERT_FALSE(pairs.empty());
  bool found = false;
  for (const auto& p : pairs) {
    if (p.a == 0 && p.b == 1 && !p.b_rc) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PairSource, NoPairsWithoutSharedSubstrings) {
  // Disjoint alphab1et usage guarantees no common 8-mer.
  EstSet ests({{"a", std::string(40, 'A') + std::string(40, 'C')},
               {"b", std::string(40, 'G') + std::string(40, 'T')}});
  // NB: revcomp of b is AAAA..CCCC-like; "b" rc = AAAA(40)CCCC? No:
  // revcomp("G^40 T^40") = "A^40 C^40", which matches EST a exactly!
  // That is intentional: the pair must be found in rc orientation.
  auto forest = gst::build_forest_sequential(ests, 4);
  auto gen = make_source(ests, forest, 4, 10);
  auto pairs = drain(*gen);
  ASSERT_FALSE(pairs.empty());
  for (const auto& p : pairs) {
    EXPECT_EQ(p.a, 0u);
    EXPECT_EQ(p.b, 1u);
    EXPECT_TRUE(p.b_rc);
  }
}

TEST(PairSource, TrulyDisjointYieldsNothing) {
  EstSet ests({{"a", std::string(60, 'A')},
               {"b", std::string(60, 'C')}});
  // rc(b) = G^60; no common 4-mer with A^60 in any orientation.
  auto forest = gst::build_forest_sequential(ests, 4);
  auto gen = make_source(ests, forest, 4, 8);
  auto pairs = drain(*gen);
  EXPECT_TRUE(pairs.empty());
}

TEST(PairSource, ReverseComplementOverlapDetected) {
  Prng rng(2);
  std::string core = random_dna(rng, 24);
  EstSet ests({{"a", random_dna(rng, 20) + core + random_dna(rng, 20)},
               {"b", random_dna(rng, 15) + bio::reverse_complement(core) +
                         random_dna(rng, 15)}});
  auto forest = gst::build_forest_sequential(ests, 4);
  auto gen = make_source(ests, forest, 4, 12);
  auto pairs = drain(*gen);
  ASSERT_FALSE(pairs.empty());
  for (const auto& p : pairs) {
    EXPECT_TRUE(p.b_rc);
  }
}

TEST(PairSource, AnchorsAreValidMaximalMatches) {
  Prng rng(3);
  EstSet ests = overlap_ests(rng, 8, 3);
  auto forest = gst::build_forest_sequential(ests, 4);
  auto gen = make_source(ests, forest, 4, 12);
  auto pairs = drain(*gen);
  ASSERT_FALSE(pairs.empty());
  for (const auto& p : pairs) {
    auto a = ests.str(bio::EstSet::forward_sid(p.a));
    auto b = ests.str(p.b_rc ? bio::EstSet::rc_sid(p.b)
                             : bio::EstSet::forward_sid(p.b));
    ASSERT_LE(p.a_pos + p.match_len, a.size());
    ASSERT_LE(p.b_pos + p.match_len, b.size());
    // Lemma 1: the anchor is a common substring...
    EXPECT_EQ(a.substr(p.a_pos, p.match_len), b.substr(p.b_pos, p.match_len));
    // ...that is left-maximal...
    if (p.a_pos > 0 && p.b_pos > 0) {
      EXPECT_NE(a[p.a_pos - 1], b[p.b_pos - 1]);
    }
    // ...and right-maximal.
    if (p.a_pos + p.match_len < a.size() &&
        p.b_pos + p.match_len < b.size()) {
      EXPECT_NE(a[p.a_pos + p.match_len], b[p.b_pos + p.match_len]);
    }
  }
}

TEST(PairSource, MatchesBruteForcePromisingPairs) {
  // Lemma 3 both directions at EST granularity: the set of generated
  // (a, b) pairs equals the set of pairs with LCS >= psi in some
  // orientation — for every backend.
  for (std::uint64_t seed : {10, 11, 12, 13}) {
    Prng rng(seed);
    EstSet ests = overlap_ests(rng, 7, 4);
    const std::uint32_t psi = 14;
    auto forest = gst::build_forest_sequential(ests, 4);
    auto gen = make_source(ests, forest, 4, psi);
    auto pairs = drain(*gen);

    std::set<std::pair<bio::EstId, bio::EstId>> generated;
    for (const auto& p : pairs) generated.insert({p.a, p.b});

    std::set<std::pair<bio::EstId, bio::EstId>> expected;
    for (bio::EstId i = 0; i < ests.num_ests(); ++i) {
      for (bio::EstId j = i + 1; j < ests.num_ests(); ++j) {
        auto ei = ests.str(bio::EstSet::forward_sid(i));
        auto ej = ests.str(bio::EstSet::forward_sid(j));
        auto ej_rc = ests.str(bio::EstSet::rc_sid(j));
        if (lcs_len(ei, ej) >= psi || lcs_len(ei, ej_rc) >= psi) {
          expected.insert({i, j});
        }
      }
    }
    EXPECT_EQ(generated, expected) << "seed " << seed;
  }
}

TEST(PairSource, PairsStreamInDecreasingMatchLength) {
  Prng rng(20);
  EstSet ests = overlap_ests(rng, 10, 2);
  auto forest = gst::build_forest_sequential(ests, 3);
  auto gen = make_source(ests, forest, 3, 10);
  auto pairs = drain(*gen);
  ASSERT_FALSE(pairs.empty());
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(pairs[i].match_len, pairs[i - 1].match_len);
  }
}

TEST(PairSource, FirstPairHasGloballyLongestMatch) {
  Prng rng(21);
  EstSet ests = overlap_ests(rng, 8, 2);
  const std::uint32_t psi = 10;
  auto forest = gst::build_forest_sequential(ests, 3);
  auto gen = make_source(ests, forest, 3, psi);
  auto pairs = drain(*gen);
  ASSERT_FALSE(pairs.empty());

  std::size_t best = 0;
  for (bio::EstId i = 0; i < ests.num_ests(); ++i) {
    for (bio::EstId j = i + 1; j < ests.num_ests(); ++j) {
      auto ei = ests.str(bio::EstSet::forward_sid(i));
      best = std::max(best,
                      lcs_len(ei, ests.str(bio::EstSet::forward_sid(j))));
      best = std::max(best, lcs_len(ei, ests.str(bio::EstSet::rc_sid(j))));
    }
  }
  EXPECT_EQ(pairs.front().match_len, best);
}

TEST(PairGenerator, EmissionCountBoundedByDistinctMaximalSubstrings) {
  // Corollary 2 is a guarantee of the GST walk's per-node duplicate
  // elimination; the seed backends emit one record per occurrence pair,
  // which a repeated substring can push past the distinct-string bound.
  if (!gst_backend()) GTEST_SKIP() << "GST-specific bound";
  Prng rng(22);
  EstSet ests = overlap_ests(rng, 6, 2, 150, 60);
  const std::uint32_t psi = 12;
  auto forest = gst::build_forest_sequential(ests, 4);
  PairGenerator gen(ests, forest, psi);
  auto pairs = drain(gen);

  std::map<std::tuple<bio::EstId, bio::EstId, bool>, std::size_t> counts;
  for (const auto& p : pairs) ++counts[{p.a, p.b, p.b_rc}];
  for (const auto& [key, count] : counts) {
    auto [a, b, rc] = key;
    auto sa = ests.str(bio::EstSet::forward_sid(a));
    auto sb = ests.str(rc ? bio::EstSet::rc_sid(b)
                          : bio::EstSet::forward_sid(b));
    auto maximal = maximal_common_substrings(sa, sb, psi);
    EXPECT_LE(count, maximal.size())
        << "pair (" << a << "," << b << ",rc=" << rc << ")";
  }
}

TEST(PairSource, BatchingIsEquivalentToDraining) {
  Prng rng(23);
  EstSet ests = overlap_ests(rng, 9, 2);
  auto forest = gst::build_forest_sequential(ests, 3);

  auto big = make_source(ests, forest, 3, 10);
  auto all = drain(*big);

  auto small = make_source(ests, forest, 3, 10);
  std::vector<PromisingPair> collected;
  while (small->next_batch(7, collected) > 0) {
  }
  ASSERT_EQ(collected.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(collected[i].a, all[i].a);
    EXPECT_EQ(collected[i].b, all[i].b);
    EXPECT_EQ(collected[i].b_rc, all[i].b_rc);
    EXPECT_EQ(collected[i].match_len, all[i].match_len);
  }
}

/// Seed-parameterized stream properties. The master's flow control (and
/// the adaptive batching on top of it) may slice the stream arbitrarily,
/// so these invariants must hold for every batch size, not just the
/// defaults the other tests use — and for every backend, since the
/// drivers are backend-agnostic.
class PairStreamProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PairStreamProperty, StreamIsSortedDuplicateFreeAndBatchInvariant) {
  Prng rng(GetParam());
  EstSet ests = overlap_ests(rng, 6 + rng.uniform(8), rng.uniform(4),
                             180 + rng.uniform(120), 70 + rng.uniform(40));
  const std::uint32_t psi = 10 + static_cast<std::uint32_t>(rng.uniform(8));
  auto forest = gst::build_forest_sequential(ests, 3);

  auto ref_gen = make_source(ests, forest, 3, psi);
  auto reference = drain(*ref_gen);

  // Non-increasing match length: the on-demand stream honours the
  // decreasing-overlap-strength order of §3.2.
  for (std::size_t i = 1; i < reference.size(); ++i) {
    EXPECT_LE(reference[i].match_len, reference[i - 1].match_len)
        << "seed " << GetParam() << " index " << i;
  }

  // Duplicate-free: one emission per (pair, orientation, anchor) record.
  std::set<std::tuple<bio::EstId, bio::EstId, bool, std::uint32_t,
                      std::uint32_t, std::uint32_t>>
      seen;
  for (const auto& p : reference) {
    EXPECT_TRUE(
        seen.insert({p.a, p.b, p.b_rc, p.a_pos, p.b_pos, p.match_len})
            .second)
        << "seed " << GetParam() << ": duplicate record (" << p.a << ","
        << p.b << ")";
  }

  // Batch-size invariance: any slicing yields the identical record
  // sequence.
  for (std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{17},
                            std::size_t{256}}) {
    auto gen = make_source(ests, forest, 3, psi);
    std::vector<PromisingPair> got;
    while (gen->next_batch(batch, got) > 0) {
    }
    ASSERT_EQ(got.size(), reference.size())
        << "seed " << GetParam() << " batch " << batch;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(got[i].a == reference[i].a && got[i].b == reference[i].b &&
                  got[i].b_rc == reference[i].b_rc &&
                  got[i].match_len == reference[i].match_len &&
                  got[i].a_pos == reference[i].a_pos &&
                  got[i].b_pos == reference[i].b_pos)
          << "seed " << GetParam() << " batch " << batch << " index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairStreamProperty,
                         testing::Range<std::uint64_t>(40, 52));

TEST(PairSource, NextBatchRespectsLimit) {
  Prng rng(24);
  EstSet ests = overlap_ests(rng, 10, 0);
  auto forest = gst::build_forest_sequential(ests, 3);
  auto gen = make_source(ests, forest, 3, 10);
  std::vector<PromisingPair> out;
  std::size_t got = gen->next_batch(3, out);
  EXPECT_LE(got, 3u);
  EXPECT_EQ(out.size(), got);
}

TEST(PairSource, ExhaustedAfterDrain) {
  Prng rng(25);
  EstSet ests = overlap_ests(rng, 5, 1);
  auto forest = gst::build_forest_sequential(ests, 3);
  auto gen = make_source(ests, forest, 3, 10);
  EXPECT_FALSE(gen->exhausted());
  drain(*gen);
  EXPECT_TRUE(gen->exhausted());
  std::vector<PromisingPair> out;
  EXPECT_EQ(gen->next_batch(10, out), 0u);
}

TEST(PairSource, NoSelfPairsEverEmitted) {
  // An EST with an inverted repeat: its forward and rc strings share the
  // repeat, producing raw (e_i, ē_i) pairs that must be discarded as self
  // pairs. (A direct repeat would not do: duplicate elimination keeps one
  // occurrence per string, so a string never pairs with itself.)
  Prng rng(26);
  std::string repeat = random_dna(rng, 30);
  EstSet ests({{"a", repeat + random_dna(rng, 10) +
                         bio::reverse_complement(repeat)},
               {"b", random_dna(rng, 70)}});
  auto forest = gst::build_forest_sequential(ests, 4);
  auto gen = make_source(ests, forest, 4, 10);
  auto pairs = drain(*gen);
  for (const auto& p : pairs) EXPECT_NE(p.a, p.b);
  EXPECT_GT(gen->stats().discarded_self, 0u);
}

TEST(PairSource, OrientationRuleKeepsForwardFirstString) {
  Prng rng(27);
  EstSet ests = overlap_ests(rng, 10, 0);
  auto forest = gst::build_forest_sequential(ests, 3);
  auto gen = make_source(ests, forest, 3, 10);
  auto pairs = drain(*gen);
  ASSERT_FALSE(pairs.empty());
  for (const auto& p : pairs) EXPECT_LT(p.a, p.b);
  // Roughly half of all raw pairs get discarded by the orientation rule.
  EXPECT_GT(gen->stats().discarded_orientation, 0u);
}

TEST(PairSource, StatsAddUp) {
  Prng rng(28);
  EstSet ests = overlap_ests(rng, 8, 2);
  auto forest = gst::build_forest_sequential(ests, 3);
  auto gen = make_source(ests, forest, 3, 10);
  auto pairs = drain(*gen);
  EXPECT_EQ(gen->stats().pairs_emitted, pairs.size());
  EXPECT_GT(gen->stats().nodes_processed, 0u);
  EXPECT_GT(gen->stats().lset_work, 0u);
}

TEST(PairSource, WorkUnitsAreConsumedByTake) {
  Prng rng(29);
  EstSet ests = overlap_ests(rng, 6, 1);
  auto forest = gst::build_forest_sequential(ests, 3);
  auto gen = make_source(ests, forest, 3, 10);
  drain(*gen);
  EXPECT_GT(gen->take_work_units(), 0u);
  EXPECT_EQ(gen->take_work_units(), 0u);  // second take: nothing new
}

TEST(PairSource, ConstructionUnitsAndIndexBytesAreStable) {
  // The driver charges construction_sort_units to the virtual clock right
  // after building the source, so the value must be deterministic and
  // must not drain away with the stream.
  Prng rng(31);
  EstSet ests = overlap_ests(rng, 8, 2);
  auto forest = gst::build_forest_sequential(ests, 3);
  auto gen = make_source(ests, forest, 3, 10);
  const std::uint64_t units = gen->construction_sort_units();
  EXPECT_GT(units, 0u);
  auto again = make_source(ests, forest, 3, 10);
  EXPECT_EQ(again->construction_sort_units(), units);
  drain(*gen);
  EXPECT_EQ(gen->construction_sort_units(), units);
  EXPECT_GT(gen->index_bytes(), 0u);
}

TEST(PairGenerator, LiveLsetCellsBoundedByOccurrences) {
  if (!gst_backend()) GTEST_SKIP() << "lset pool is GST-internal";
  Prng rng(30);
  EstSet ests = overlap_ests(rng, 12, 3);
  auto forest = gst::build_forest_sequential(ests, 3);
  std::size_t total_occs = 0;
  for (const auto& t : forest) total_occs += t.occs.size();

  PairGenerator gen(ests, forest, 10);
  std::vector<PromisingPair> out;
  std::uint32_t peak = 0;
  while (gen.next_batch(50, out) > 0) {
    peak = std::max(peak, gen.live_lset_cells());
    out.clear();
  }
  EXPECT_LE(peak, total_occs);
  EXPECT_EQ(gen.live_lset_cells(), 0u);  // everything retired at the end
}

TEST(PairSource, EmptyForest) {
  EstSet ests(std::vector<Sequence>{{"a", "ACGT"}});
  std::vector<gst::Tree> forest;  // nothing
  auto gen = make_source(ests, forest, 4, 8);
  EXPECT_TRUE(gen->exhausted());
}

TEST(PairSource, IdenticalEstsPairViaLambdaLeaf) {
  // Two identical ESTs: the whole-string suffix of each is the same string,
  // coalescing into one leaf whose l_λ has both -> λ×λ product emits them
  // (the seed backends find the same anchor by whole-string extension).
  EstSet ests({{"a", "ACGTACGTACGTACGT"}, {"b", "ACGTACGTACGTACGT"}});
  auto forest = gst::build_forest_sequential(ests, 4);
  auto gen = make_source(ests, forest, 4, 16);
  auto pairs = drain(*gen);
  bool found = false;
  for (const auto& p : pairs) {
    if (p.a == 0 && p.b == 1 && !p.b_rc && p.match_len == 16) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace estclust::pairgen
