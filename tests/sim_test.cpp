#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bio/sequence.hpp"
#include "sim/workload.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace estclust::sim {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.num_genes = 5;
  cfg.num_ests = 60;
  cfg.est_len_mean = 200;
  cfg.est_len_stddev = 30;
  cfg.est_len_min = 60;
  cfg.seed = 99;
  return cfg;
}

TEST(Workload, ProducesRequestedCounts) {
  auto wl = generate(small_config());
  EXPECT_EQ(wl.ests.num_ests(), 60u);
  EXPECT_EQ(wl.truth.size(), 60u);
  EXPECT_EQ(wl.mrnas.size(), 5u);
}

TEST(Workload, DeterministicForSameSeed) {
  auto a = generate(small_config());
  auto b = generate(small_config());
  ASSERT_EQ(a.ests.num_ests(), b.ests.num_ests());
  for (std::size_t i = 0; i < a.ests.num_ests(); ++i) {
    EXPECT_EQ(a.ests.est(i).bases, b.ests.est(i).bases);
    EXPECT_EQ(a.truth[i], b.truth[i]);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  auto a = generate(small_config());
  SimConfig cfg = small_config();
  cfg.seed = 100;
  auto b = generate(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.ests.num_ests(); ++i) {
    if (a.ests.est(i).bases != b.ests.est(i).bases) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workload, TruthIdsAreValidGeneIndices) {
  auto wl = generate(small_config());
  for (auto g : wl.truth) EXPECT_LT(g, 5u);
}

TEST(Workload, EstLengthsRespectMinimumAndTranscripts) {
  auto wl = generate(small_config());
  for (std::size_t i = 0; i < wl.ests.num_ests(); ++i) {
    const auto& est = wl.ests.est(i).bases;
    // Errors can delete a few bases below the configured minimum, but the
    // bulk must be near it or above.
    EXPECT_GE(est.size(), 40u);
  }
}

TEST(Workload, ErrorFreeEstIsExactSubstringOfItsTranscript) {
  SimConfig cfg = small_config();
  cfg.sub_rate = cfg.ins_rate = cfg.del_rate = 0.0;
  cfg.rc_prob = 0.0;
  auto wl = generate(cfg);
  for (std::size_t i = 0; i < wl.ests.num_ests(); ++i) {
    const auto& mrna = wl.mrnas[wl.truth[i]];
    EXPECT_NE(mrna.find(wl.ests.est(i).bases), std::string::npos)
        << "EST " << i << " not a substring of its transcript";
  }
}

TEST(Workload, RcStrandsAreReverseComplementsOfTranscriptWindows) {
  SimConfig cfg = small_config();
  cfg.sub_rate = cfg.ins_rate = cfg.del_rate = 0.0;
  cfg.rc_prob = 1.0;
  auto wl = generate(cfg);
  for (std::size_t i = 0; i < wl.ests.num_ests(); ++i) {
    const auto& mrna = wl.mrnas[wl.truth[i]];
    auto fwd = bio::reverse_complement(wl.ests.est(i).bases);
    EXPECT_NE(mrna.find(fwd), std::string::npos);
  }
}

TEST(Workload, StrandMixRoughlyBalanced) {
  SimConfig cfg = small_config();
  cfg.num_ests = 400;
  cfg.sub_rate = cfg.ins_rate = cfg.del_rate = 0.0;
  auto wl = generate(cfg);
  std::size_t forward = 0;
  for (std::size_t i = 0; i < wl.ests.num_ests(); ++i) {
    const auto& mrna = wl.mrnas[wl.truth[i]];
    if (mrna.find(wl.ests.est(i).bases) != std::string::npos) ++forward;
  }
  EXPECT_GT(forward, 120u);
  EXPECT_LT(forward, 280u);
}

TEST(Workload, ExpressionSkewConcentratesOnFewGenes) {
  SimConfig cfg = small_config();
  cfg.num_genes = 20;
  cfg.num_ests = 1000;
  cfg.expression_skew = 0.9;
  auto wl = generate(cfg);
  std::vector<std::size_t> counts(20, 0);
  for (auto g : wl.truth) ++counts[g];
  std::sort(counts.rbegin(), counts.rend());
  // Top gene should far outnumber the median gene.
  EXPECT_GT(counts[0], 3 * std::max<std::size_t>(counts[10], 1));
}

TEST(Workload, ZeroSkewIsRoughlyUniform) {
  SimConfig cfg = small_config();
  cfg.num_genes = 4;
  cfg.num_ests = 800;
  cfg.expression_skew = 0.0;
  auto wl = generate(cfg);
  std::vector<std::size_t> counts(4, 0);
  for (auto g : wl.truth) ++counts[g];
  for (auto c : counts) EXPECT_NEAR(static_cast<double>(c), 200.0, 60.0);
}

TEST(ApplyErrors, ZeroRatesIsIdentity) {
  Prng rng(5);
  std::string s = "ACGTACGTGGCC";
  EXPECT_EQ(apply_errors(s, 0, 0, 0, rng), s);
}

TEST(ApplyErrors, SubstitutionChangesLengthNot) {
  Prng rng(6);
  std::string s(500, 'A');
  auto out = apply_errors(s, 0.1, 0, 0, rng);
  EXPECT_EQ(out.size(), s.size());
  EXPECT_NE(out, s);
}

TEST(ApplyErrors, DeletionShortens) {
  Prng rng(7);
  std::string s(1000, 'C');
  auto out = apply_errors(s, 0, 0, 0.1, rng);
  EXPECT_LT(out.size(), s.size());
  EXPECT_GT(out.size(), 800u);
}

TEST(ApplyErrors, InsertionLengthens) {
  Prng rng(8);
  std::string s(1000, 'G');
  auto out = apply_errors(s, 0, 0.1, 0, rng);
  EXPECT_GT(out.size(), s.size());
}

TEST(ApplyErrors, NeverReturnsEmpty) {
  Prng rng(9);
  auto out = apply_errors("A", 0, 0, 1.0, rng);
  EXPECT_FALSE(out.empty());
}

TEST(ScaledConfig, TracksTargetSize) {
  auto cfg = scaled_config(1200);
  EXPECT_EQ(cfg.num_ests, 1200u);
  EXPECT_EQ(cfg.num_genes, 100u);
  auto tiny = scaled_config(10);
  EXPECT_GE(tiny.num_genes, 2u);
}

TEST(Workload, IsoformsDisabledByDefault) {
  auto wl = generate(small_config());
  for (const auto& iso : wl.isoforms) EXPECT_EQ(iso.size(), 1u);
  for (auto i : wl.est_isoform) EXPECT_EQ(i, 0);
}

TEST(Workload, IsoformsSkipOneInternalExon) {
  SimConfig cfg = small_config();
  cfg.alt_splice_prob = 1.0;
  cfg.min_exons = 4;
  cfg.max_exons = 6;
  cfg.exon_len_min = 60;
  cfg.exon_len_max = 100;
  cfg.est_len_min = 60;
  auto wl = generate(cfg);
  bool any = false;
  for (const auto& iso : wl.isoforms) {
    ASSERT_LE(iso.size(), 2u);
    if (iso.size() == 2) {
      any = true;
      // The alternative isoform is strictly shorter (one exon removed)
      // and shares a prefix with the primary (exons before the skip).
      EXPECT_LT(iso[1].size(), iso[0].size());
      std::size_t common = 0;
      while (common < iso[1].size() && iso[0][common] == iso[1][common]) {
        ++common;
      }
      EXPECT_GE(common, 60u);  // at least the first exon
    }
  }
  EXPECT_TRUE(any);
}

TEST(Workload, EstIsoformIndicesValid) {
  SimConfig cfg = small_config();
  cfg.alt_splice_prob = 1.0;
  cfg.min_exons = 4;
  auto wl = generate(cfg);
  ASSERT_EQ(wl.est_isoform.size(), wl.ests.num_ests());
  for (std::size_t i = 0; i < wl.ests.num_ests(); ++i) {
    EXPECT_LT(wl.est_isoform[i], wl.isoforms[wl.truth[i]].size());
  }
}

TEST(Workload, ParalogsShareSequenceWithParentAtConfiguredDivergence) {
  SimConfig cfg = small_config();
  cfg.num_genes = 12;
  cfg.paralog_fraction = 1.0;  // every gene after the first is a paralog
  cfg.paralog_divergence = 0.1;
  auto wl = generate(cfg);
  // At 10% divergence a paralog transcript agrees with some earlier gene
  // at ~90% of positions over the shared prefix.
  bool found_similar = false;
  for (std::size_t g = 1; g < wl.mrnas.size(); ++g) {
    for (std::size_t h = 0; h < g; ++h) {
      const auto& a = wl.mrnas[g];
      const auto& b = wl.mrnas[h];
      std::size_t len = std::min(a.size(), b.size());
      if (len < 100) continue;
      std::size_t same = 0;
      for (std::size_t i = 0; i < len; ++i) same += a[i] == b[i];
      double identity = static_cast<double>(same) /
                        static_cast<double>(len);
      if (identity > 0.85) found_similar = true;
    }
  }
  EXPECT_TRUE(found_similar);
}

TEST(Workload, RepeatInsertionLengthensTranscripts) {
  SimConfig base = small_config();
  base.min_exons = base.max_exons = 3;
  base.exon_len_min = base.exon_len_max = 100;
  SimConfig with_repeats = base;
  with_repeats.repeat_prob = 1.0;
  with_repeats.repeat_len = 120;
  auto plain = generate(base);
  auto repeated = generate(with_repeats);
  double mean_plain = 0, mean_rep = 0;
  for (const auto& m : plain.mrnas) mean_plain += m.size();
  for (const auto& m : repeated.mrnas) mean_rep += m.size();
  // Every transcript gained ~120 bases.
  EXPECT_GT(mean_rep / repeated.mrnas.size(),
            mean_plain / plain.mrnas.size() + 60);
}

TEST(Workload, RejectsZeroGenes) {
  SimConfig cfg = small_config();
  cfg.num_genes = 0;
  EXPECT_THROW(generate(cfg), CheckError);
}

}  // namespace
}  // namespace estclust::sim
