#include <gtest/gtest.h>

#include "pace/incremental.hpp"
#include "pace/sequential.hpp"
#include "quality/metrics.hpp"
#include "sim/workload.hpp"
#include "util/prng.hpp"

namespace estclust::pace {
namespace {

sim::Workload workload(std::size_t ests, std::uint64_t seed = 77) {
  sim::SimConfig cfg;
  cfg.num_genes = 10;
  cfg.num_ests = ests;
  cfg.est_len_mean = 220;
  cfg.est_len_stddev = 40;
  cfg.est_len_min = 80;
  cfg.seed = seed;
  return sim::generate(cfg);
}

PaceConfig config() {
  PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 24;
  cfg.overlap.min_quality = 0.75;
  cfg.overlap.min_overlap = 40;
  return cfg;
}

std::vector<bio::Sequence> slice(const bio::EstSet& ests, std::size_t lo,
                                 std::size_t hi) {
  std::vector<bio::Sequence> out;
  for (std::size_t i = lo; i < hi && i < ests.num_ests(); ++i) {
    out.push_back(ests.est(static_cast<bio::EstId>(i)));
  }
  return out;
}

TEST(Incremental, SingleBatchEqualsScratch) {
  auto wl = workload(100);
  auto scratch = cluster_sequential(wl.ests, config());

  IncrementalClusterer inc(config());
  inc.add_batch(slice(wl.ests, 0, 100));
  EXPECT_EQ(inc.labels(), scratch.clusters.labels());
}

class IncrementalBatchTest : public testing::TestWithParam<std::size_t> {};

TEST_P(IncrementalBatchTest, AnyBatchSplitEqualsScratch) {
  // The §5 open problem: batches must converge to exactly the clustering
  // a from-scratch run over the union produces.
  const std::size_t batch_size = GetParam();
  auto wl = workload(120);
  auto scratch = cluster_sequential(wl.ests, config());

  IncrementalClusterer inc(config());
  for (std::size_t lo = 0; lo < wl.ests.num_ests(); lo += batch_size) {
    inc.add_batch(slice(wl.ests, lo, lo + batch_size));
  }
  ASSERT_EQ(inc.num_ests(), wl.ests.num_ests());
  EXPECT_EQ(inc.labels(), scratch.clusters.labels())
      << "batch size " << batch_size;
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, IncrementalBatchTest,
                         testing::Values(1, 7, 25, 40, 120));

TEST(Incremental, EmptyBatchIsNoop) {
  IncrementalClusterer inc(config());
  auto st = inc.add_batch({});
  EXPECT_EQ(st.new_ests, 0u);
  EXPECT_EQ(inc.num_ests(), 0u);
  EXPECT_EQ(inc.num_clusters(), 0u);
}

TEST(Incremental, LaterBatchesOnlyTouchDirtyBuckets) {
  auto wl = workload(120);
  IncrementalClusterer inc(config());
  inc.add_batch(slice(wl.ests, 0, 100));
  auto st = inc.add_batch(slice(wl.ests, 100, 120));
  EXPECT_EQ(st.new_ests, 20u);
  // A small batch must not rebuild the whole structure.
  EXPECT_LT(st.dirty_buckets, st.total_buckets);
  EXPECT_GT(st.dirty_buckets, 0u);
}

TEST(Incremental, OldOldPairsAreFiltered) {
  auto wl = workload(100);
  IncrementalClusterer inc(config());
  inc.add_batch(slice(wl.ests, 0, 80));
  auto st = inc.add_batch(slice(wl.ests, 80, 100));
  // Dirty buckets contain old suffixes too; pairs among them must be
  // recognized as already-processed work.
  EXPECT_GT(st.pairs_filtered, 0u);
}

TEST(Incremental, QualityMatchesScratchOnTruth) {
  auto wl = workload(150, 99);
  auto scratch = cluster_sequential(wl.ests, config());
  IncrementalClusterer inc(config());
  for (std::size_t lo = 0; lo < 150; lo += 30) {
    inc.add_batch(slice(wl.ests, lo, lo + 30));
  }
  auto pc_inc = quality::count_pairs(inc.labels(), wl.truth);
  auto pc_scr = quality::count_pairs(scratch.clusters.labels(), wl.truth);
  EXPECT_DOUBLE_EQ(pc_inc.correlation(), pc_scr.correlation());
}

TEST(Incremental, ClusterCountMonotonicallyReasonable) {
  auto wl = workload(90);
  IncrementalClusterer inc(config());
  inc.add_batch(slice(wl.ests, 0, 30));
  std::size_t c1 = inc.num_clusters();
  inc.add_batch(slice(wl.ests, 30, 90));
  // More ESTs cannot reduce clusters below 1 or exceed EST count.
  EXPECT_GE(inc.num_clusters(), 1u);
  EXPECT_LE(inc.num_clusters(), 90u);
  EXPECT_LE(c1, 30u);
}

TEST(UnionFindGrow, AppendsSingletons) {
  cluster::UnionFind uf(3);
  uf.unite(0, 1);
  uf.grow(6);
  EXPECT_EQ(uf.size(), 6u);
  EXPECT_EQ(uf.num_clusters(), 5u);  // {0,1},{2},{3},{4},{5}
  EXPECT_FALSE(uf.same(3, 4));
  EXPECT_TRUE(uf.same(0, 1));
  uf.unite(4, 5);
  EXPECT_EQ(uf.num_clusters(), 4u);
}

TEST(UnionFindGrow, RejectsShrink) {
  cluster::UnionFind uf(4);
  EXPECT_THROW(uf.grow(2), CheckError);
}

}  // namespace
}  // namespace estclust::pace
