#include <gtest/gtest.h>

#include <map>

#include "bio/alphabet.hpp"
#include "gst/builder.hpp"
#include "gst/suffix_array.hpp"
#include "util/prng.hpp"

namespace estclust::gst {
namespace {

using bio::EstSet;
using bio::Sequence;

std::string random_dna(Prng& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = bio::decode_base(static_cast<int>(rng.uniform(4)));
  return s;
}

EstSet random_ests(Prng& rng, std::size_t n, std::size_t min_len,
                   std::size_t max_len) {
  std::vector<Sequence> seqs;
  for (std::size_t i = 0; i < n; ++i) {
    seqs.push_back(
        {"e" + std::to_string(i),
         random_dna(rng, min_len + rng.uniform(max_len - min_len + 1))});
  }
  return EstSet(std::move(seqs));
}

/// Workload with heavy shared substrings (the interesting tree shapes).
EstSet overlapping_ests(Prng& rng, std::size_t n) {
  std::string gene = random_dna(rng, 200);
  std::vector<Sequence> seqs;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t start = rng.uniform(140);
    seqs.push_back({"r" + std::to_string(i), gene.substr(start, 60)});
  }
  return EstSet(std::move(seqs));
}

bool nodes_equal(const Node& a, const Node& b) {
  return a.rightmost == b.rightmost && a.depth == b.depth &&
         a.occ_begin == b.occ_begin && a.occ_end == b.occ_end;
}

bool trees_equal(const Tree& a, const Tree& b) {
  if (a.bucket_id != b.bucket_id || a.prefix_depth != b.prefix_depth)
    return false;
  if (a.nodes.size() != b.nodes.size() || a.occs.size() != b.occs.size())
    return false;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    if (!nodes_equal(a.nodes[i], b.nodes[i])) return false;
  }
  for (std::size_t i = 0; i < a.occs.size(); ++i) {
    if (!(a.occs[i] == b.occs[i])) return false;
  }
  return true;
}

TEST(SuffixArrayBuild, SortedAndComplete) {
  Prng rng(1);
  EstSet ests = random_ests(rng, 6, 20, 50);
  const std::uint32_t w = 3;
  auto sa = build_suffix_array(ests, w);

  // Completeness: one entry per suffix of length >= w.
  std::size_t expected = 0;
  for (bio::StringId sid = 0; sid < ests.num_strings(); ++sid) {
    auto len = ests.str(sid).size();
    if (len >= w) expected += len - w + 1;
  }
  EXPECT_EQ(sa.order.size(), expected);

  // Sortedness.
  auto suffix = [&](const SuffixOcc& occ) {
    return ests.str(occ.sid).substr(occ.pos);
  };
  for (std::size_t k = 1; k < sa.order.size(); ++k) {
    EXPECT_LE(suffix(sa.order[k - 1]), suffix(sa.order[k]));
  }
}

TEST(SuffixArrayBuild, LcpMatchesBruteForce) {
  Prng rng(2);
  EstSet ests = random_ests(rng, 4, 15, 30);
  auto sa = build_suffix_array(ests, 2);
  auto suffix = [&](const SuffixOcc& occ) {
    return ests.str(occ.sid).substr(occ.pos);
  };
  EXPECT_EQ(sa.lcp[0], 0u);
  for (std::size_t k = 1; k < sa.order.size(); ++k) {
    auto x = suffix(sa.order[k - 1]);
    auto y = suffix(sa.order[k]);
    std::uint32_t l = 0;
    while (l < x.size() && l < y.size() && x[l] == y[l]) ++l;
    EXPECT_EQ(sa.lcp[k], l);
  }
}

class SaCrossValidation : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SaCrossValidation, ForestsIdenticalOnRandomInputs) {
  // Two construction algorithms that share no code must produce exactly
  // the same trees.
  Prng rng(GetParam());
  EstSet ests = random_ests(rng, 5 + rng.uniform(8), 15, 60);
  const std::uint32_t w = 2 + static_cast<std::uint32_t>(rng.uniform(3));

  auto refinement = build_forest_sequential(ests, w);
  auto sa = build_suffix_array(ests, w);
  auto from_sa = forest_from_suffix_array(ests, sa, w);

  ASSERT_EQ(refinement.size(), from_sa.size());
  for (std::size_t i = 0; i < refinement.size(); ++i) {
    EXPECT_TRUE(trees_equal(refinement[i], from_sa[i]))
        << "bucket " << refinement[i].bucket_id << " differs (seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaCrossValidation,
                         testing::Range<std::uint64_t>(100, 130));

TEST(SaCrossValidationHeavy, OverlapRichInput) {
  Prng rng(7);
  EstSet ests = overlapping_ests(rng, 20);
  const std::uint32_t w = 4;
  auto refinement = build_forest_sequential(ests, w);
  auto from_sa = forest_from_suffix_array(ests, build_suffix_array(ests, w),
                                          w);
  ASSERT_EQ(refinement.size(), from_sa.size());
  for (std::size_t i = 0; i < refinement.size(); ++i) {
    EXPECT_TRUE(trees_equal(refinement[i], from_sa[i]));
  }
}

TEST(SaCrossValidationHeavy, LowComplexityInput) {
  // Poly-A runs and short periods: the nastiest tree shapes.
  EstSet ests({{"a", std::string(40, 'A')},
               {"b", std::string(20, 'A') + std::string(20, 'C')},
               {"c", "ACACACACACACACACACAC"},
               {"d", "ACACACACACACACACACAC"}});
  for (std::uint32_t w : {1u, 2u, 3u}) {
    auto refinement = build_forest_sequential(ests, w);
    auto from_sa = forest_from_suffix_array(
        ests, build_suffix_array(ests, w), w);
    ASSERT_EQ(refinement.size(), from_sa.size()) << "w=" << w;
    for (std::size_t i = 0; i < refinement.size(); ++i) {
      EXPECT_TRUE(trees_equal(refinement[i], from_sa[i])) << "w=" << w;
    }
  }
}

TEST(SaForest, ValidatesStructurally) {
  Prng rng(9);
  EstSet ests = random_ests(rng, 6, 20, 50);
  auto forest = forest_from_suffix_array(
      ests, build_suffix_array(ests, 3), 3);
  for (const auto& t : forest) t.validate(ests);
}

}  // namespace
}  // namespace estclust::gst
