// Parallel scaling demonstration: cluster the same EST set with a growing
// rank group and show that (a) the clustering is bit-identical at every
// rank count, and (b) the modeled parallel run-time shrinks.
//
//   ./scaling_demo [--ests 600] [--max-p 32]

#include <iostream>
#include <mutex>

#include "mpr/runtime.hpp"
#include "pace/parallel.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  CliArgs args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("ests", 600));
  const int max_p = static_cast<int>(args.get_int("max-p", 32));

  auto wl = sim::generate(sim::scaled_config(n));
  pace::PaceConfig cfg;

  std::cout << "Clustering " << n << " ESTs at growing processor counts\n"
            << "(virtual time: LogP-style cost model over the real "
            << "message-passing execution)\n\n";

  TablePrinter table({"p", "run-time (virt s)", "speedup", "clusters",
                      "pairs aligned"});
  std::vector<std::uint32_t> reference;
  double t1 = 0.0;
  for (int p = 1; p <= max_p; p *= 2) {
    mpr::Runtime rt(p, mpr::CostModel{});
    pace::ParallelResult result;
    std::mutex mu;
    rt.run([&](mpr::Communicator& comm) {
      auto res = pace::cluster_parallel(comm, wl.ests, cfg);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        result = std::move(res);
      }
    });
    if (p == 1) {
      t1 = result.stats.t_total;
      reference = result.labels;
    } else if (result.labels != reference) {
      std::cerr << "ERROR: clustering changed at p=" << p << "\n";
      return 1;
    }
    table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(p)),
                   TablePrinter::fmt(result.stats.t_total, 4),
                   TablePrinter::fmt(t1 / result.stats.t_total, 2),
                   TablePrinter::fmt(
                       static_cast<std::uint64_t>(result.stats.num_clusters)),
                   TablePrinter::fmt(result.stats.pairs_processed)});
  }
  table.print(std::cout);
  std::cout << "\nClustering is identical at every p (checked).\n";
  return 0;
}
