// Inspect the strongest EST overlaps directly through the pair-generation
// and alignment APIs — the building blocks a downstream assembler would
// consume (the "promising pairs" of Section 3.2 with their Fig 5b shapes).
//
//   ./overlap_inspect [--ests 150] [--top 15] [--psi 25]

#include <iostream>

#include "align/anchored.hpp"
#include "gst/builder.hpp"
#include "pace/aligner.hpp"
#include "pairgen/generator.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  CliArgs args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("ests", 150));
  const std::size_t top = static_cast<std::size_t>(args.get_int("top", 15));
  const std::uint32_t psi =
      static_cast<std::uint32_t>(args.get_int("psi", 25));

  auto wl = sim::generate(sim::scaled_config(n));
  const bio::EstSet& ests = wl.ests;

  // Build the GST forest and stream pairs in decreasing match length.
  const std::uint32_t w = 8;
  auto forest = gst::build_forest_sequential(ests, w);
  pairgen::PairGenerator gen(ests, forest, psi);

  align::OverlapParams params;  // defaults: band 8, quality 0.8
  std::cout << "Strongest promising pairs (decreasing maximal common "
            << "substring length):\n\n";
  TablePrinter table({"est A", "est B", "orient", "match", "overlap kind",
                      "span A", "span B", "quality", "verdict"});

  std::vector<pairgen::PromisingPair> batch;
  std::size_t shown = 0;
  while (shown < top && gen.next_batch(32, batch) > 0) {
    for (const auto& p : batch) {
      if (shown >= top) break;
      pace::PairEvaluation ev = pace::evaluate_pair(ests, p, params);
      table.add_row(
          {ests.est(p.a).id, ests.est(p.b).id, p.b_rc ? "rc" : "fwd",
           TablePrinter::fmt(static_cast<std::uint64_t>(p.match_len)),
           align::to_string(ev.overlap.kind),
           TablePrinter::fmt(
               static_cast<std::uint64_t>(ev.overlap.a_span())),
           TablePrinter::fmt(
               static_cast<std::uint64_t>(ev.overlap.b_span())),
           TablePrinter::fmt(ev.overlap.quality, 3),
           ev.accepted ? "merge" : "reject"});
      ++shown;
    }
    batch.clear();
  }
  table.print(std::cout);

  std::cout << "\n'merge' rows show one of the four accepted overlap "
            << "shapes of Fig 5b\nwith score >= " << params.min_quality
            << " x ideal; 'reject' rows share a long exact match\nbut do "
            << "not extend to a clean overlap (e.g. chance repeats).\n";
  return 0;
}
