// Cluster ESTs from a FASTA file and write one FASTA per-cluster listing,
// the workflow a wet-lab user would run on a real EST library.
//
//   ./cluster_fasta input.fa [--out clusters.txt] [--psi 20] [--window 8]
//                   [--min-quality 0.8] [--min-overlap 40]
//
// With no input file, a demonstration FASTA is generated first so the
// example is runnable out of the box.

#include <fstream>
#include <iostream>

#include "bio/fasta.hpp"
#include "pace/sequential.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  CliArgs args(argc, argv);

  std::string input;
  if (!args.positionals().empty()) {
    input = args.positionals()[0];
  } else {
    // Self-contained demo: synthesize a library and write it to disk.
    input = "demo_ests.fa";
    sim::SimConfig wcfg;
    wcfg.num_ests = 200;
    wcfg.num_genes = 15;
    wcfg.seed = 7;
    auto wl = sim::generate(wcfg);
    std::vector<bio::Sequence> seqs;
    for (std::size_t i = 0; i < wl.ests.num_ests(); ++i) {
      seqs.push_back(wl.ests.est(i));
    }
    bio::write_fasta_file(input, seqs);
    std::cout << "No input given; wrote demo library to " << input << "\n";
  }

  auto seqs = bio::read_fasta_file(input);
  std::cout << "Read " << seqs.size() << " ESTs from " << input << "\n";
  bio::EstSet ests(std::move(seqs));

  pace::PaceConfig cfg;
  cfg.psi = static_cast<std::uint32_t>(args.get_int("psi", 20));
  cfg.gst.window = static_cast<std::uint32_t>(args.get_int("window", 8));
  cfg.overlap.min_quality = args.get_double("min-quality", 0.8);
  cfg.overlap.min_overlap =
      static_cast<std::size_t>(args.get_int("min-overlap", 40));

  auto res = pace::cluster_sequential(ests, cfg);
  std::cout << "Found " << res.stats.num_clusters << " clusters; aligned "
            << res.stats.pairs_processed << " of "
            << res.stats.pairs_generated << " promising pairs in "
            << res.stats.t_total << " s\n";

  const std::string out_path = args.get_string("out", "clusters.txt");
  std::ofstream out(out_path);
  auto clusters = res.clusters.extract_clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    out << ">cluster_" << c << " size=" << clusters[c].size() << '\n';
    for (auto id : clusters[c]) {
      out << ests.est(id).id << '\n';
    }
  }
  std::cout << "Cluster membership written to " << out_path << "\n";
  return 0;
}
