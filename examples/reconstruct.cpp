// Transcript reconstruction: the downstream step EST clustering exists
// for. Cluster a simulated library, lay each cluster out from the
// accepted overlaps, build draft consensi, and measure how well they
// recover the true transcripts.
//
//   ./reconstruct [--ests 300] [--genes 20]

#include <iostream>

#include "align/nw.hpp"
#include "assembly/consensus.hpp"
#include "bio/sequence.hpp"
#include "pace/sequential.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

// Best identity of `cons` against any window of `mrna` in either
// orientation (computed with the library's own local aligner).
double recovery_identity(const std::string& cons, const std::string& mrna) {
  estclust::align::Scoring sc;
  auto fwd = estclust::align::local_align(cons, mrna, sc);
  auto rev = estclust::align::local_align(
      cons, estclust::bio::reverse_complement(mrna), sc);
  const auto& best = fwd.score >= rev.score ? fwd : rev;
  if (best.ops.empty()) return 0.0;
  // Identity over the aligned region, weighted by how much of the
  // consensus it covers.
  double span = static_cast<double>(best.a_end - best.a_begin) /
                static_cast<double>(cons.size());
  return best.identity() * span;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace estclust;
  CliArgs args(argc, argv);

  sim::SimConfig wcfg = sim::scaled_config(
      static_cast<std::size_t>(args.get_int("ests", 300)));
  wcfg.num_genes = static_cast<std::size_t>(
      args.get_int("genes", static_cast<long>(wcfg.num_genes)));
  wcfg.sub_rate = 0.01;
  wcfg.ins_rate = wcfg.del_rate = 0.001;
  auto wl = sim::generate(wcfg);

  pace::PaceConfig cfg;
  auto res = pace::cluster_sequential(wl.ests, cfg);
  auto contigs = assembly::assemble_clusters(wl.ests, res.overlaps);

  std::cout << "Clustered " << wl.ests.num_ests() << " ESTs into "
            << res.stats.num_clusters << " clusters; assembled "
            << contigs.size() << " contigs.\n\n";

  TablePrinter table({"contig", "ESTs", "length", "mean depth",
                      "true gene", "recovery"});
  std::size_t shown = 0;
  double total_recovery = 0.0;
  std::size_t scored = 0;
  for (std::size_t c = 0; c < contigs.size(); ++c) {
    const auto& contig = contigs[c];
    const auto gene = wl.truth[contig.layout.placements[0].est];
    double rec = recovery_identity(contig.consensus, wl.mrnas[gene]);
    total_recovery += rec;
    ++scored;
    double depth = 0;
    for (auto d : contig.coverage) depth += d;
    depth /= static_cast<double>(std::max<std::size_t>(1,
                                                       contig.coverage.size()));
    if (contig.num_ests() >= 2 && shown < 10) {
      ++shown;
      table.add_row(
          {TablePrinter::fmt(static_cast<std::uint64_t>(c)),
           TablePrinter::fmt(static_cast<std::uint64_t>(contig.num_ests())),
           TablePrinter::fmt(
               static_cast<std::uint64_t>(contig.consensus.size())),
           TablePrinter::fmt(depth, 1),
           "gene" + std::to_string(gene),
           TablePrinter::fmt(100.0 * rec, 1) + "%"});
    }
  }
  table.print(std::cout);
  std::cout << "\nMean transcript recovery over all " << scored
            << " contigs: "
            << TablePrinter::fmt(100.0 * total_recovery / scored, 1)
            << "% (identity x coverage of the consensus against the true "
            << "transcript).\n";
  return 0;
}
