// Alternative-splicing detection — §3.3/§5's "additional processing":
// generate a library whose genes have exon-skipping isoforms, cluster it,
// then report EST pairs whose alignment shows the skipped-exon signature.
//
//   ./splice_detect [--ests 150] [--genes 10]

#include <iostream>

#include "analysis/splice.hpp"
#include "gst/builder.hpp"
#include "pace/sequential.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  CliArgs args(argc, argv);

  sim::SimConfig wcfg;
  wcfg.num_ests = static_cast<std::size_t>(args.get_int("ests", 150));
  wcfg.num_genes = static_cast<std::size_t>(args.get_int("genes", 10));
  wcfg.alt_splice_prob = 0.8;  // most genes get an exon-skipping isoform
  wcfg.min_exons = 3;
  wcfg.max_exons = 5;
  wcfg.exon_len_min = 60;
  wcfg.exon_len_max = 140;
  wcfg.est_len_mean = 400;
  wcfg.est_len_min = 150;
  wcfg.sub_rate = 0.005;
  wcfg.ins_rate = wcfg.del_rate = 0.001;
  wcfg.seed = 8;
  auto wl = sim::generate(wcfg);

  std::size_t genes_with_isoforms = 0;
  for (const auto& iso : wl.isoforms) {
    genes_with_isoforms += iso.size() > 1;
  }
  std::cout << "Generated " << wl.ests.num_ests() << " ESTs; "
            << genes_with_isoforms << " of " << wcfg.num_genes
            << " genes have an exon-skipping isoform.\n";

  pace::PaceConfig ccfg;
  auto clustering = pace::cluster_sequential(wl.ests, ccfg);
  std::cout << "Clustered into " << clustering.stats.num_clusters
            << " clusters.\n\n";

  auto forest = gst::build_forest_sequential(wl.ests, 8);
  analysis::SpliceParams params;
  auto candidates =
      analysis::detect_alternative_splicing(wl.ests, forest, params);

  std::cout << "Top alternative-splicing candidates:\n\n";
  TablePrinter t({"EST A", "EST B", "gap (skipped exon)", "carried by",
                  "flank identity", "same gene?"});
  std::size_t shown = 0, correct = 0;
  for (const auto& c : candidates) {
    bool same_gene = wl.truth[c.a] == wl.truth[c.b];
    correct += same_gene;
    if (shown++ < 12) {
      t.add_row({wl.ests.est(c.a).id, wl.ests.est(c.b).id,
                 TablePrinter::fmt(static_cast<std::uint64_t>(c.gap_len)),
                 c.gap_in_a ? "A" : "B",
                 TablePrinter::fmt(c.flank_identity, 3),
                 same_gene ? "yes" : "NO"});
    }
  }
  t.print(std::cout);
  std::cout << "\n" << candidates.size() << " candidate pair(s); "
            << correct << " link ESTs of the same gene (isoforms).\n";
  return 0;
}
