// Incremental clustering — the paper's §5 open problem in action: new
// sequencing batches arrive over time and the clusters are adjusted
// without re-clustering everything, then checked against a from-scratch
// run of the full set.
//
//   ./incremental_updates [--ests 400] [--batches 5]

#include <iostream>

#include "pace/incremental.hpp"
#include "pace/sequential.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  CliArgs args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("ests", 400));
  const std::size_t batches =
      static_cast<std::size_t>(args.get_int("batches", 5));

  auto wl = sim::generate(sim::scaled_config(n));
  pace::PaceConfig cfg;

  std::cout << "Streaming " << n << " ESTs into the clusterer in "
            << batches << " batches:\n\n";
  pace::IncrementalClusterer inc(cfg);
  TablePrinter table({"batch", "new ESTs", "dirty buckets", "total buckets",
                      "aligned", "clusters", "time (s)"});
  const std::size_t per = (n + batches - 1) / batches;
  for (std::size_t b = 0; b < batches; ++b) {
    std::vector<bio::Sequence> batch;
    for (std::size_t i = b * per; i < std::min(n, (b + 1) * per); ++i) {
      batch.push_back(wl.ests.est(static_cast<bio::EstId>(i)));
    }
    auto st = inc.add_batch(std::move(batch));
    table.add_row(
        {TablePrinter::fmt(static_cast<std::uint64_t>(b + 1)),
         TablePrinter::fmt(static_cast<std::uint64_t>(st.new_ests)),
         TablePrinter::fmt(static_cast<std::uint64_t>(st.dirty_buckets)),
         TablePrinter::fmt(static_cast<std::uint64_t>(st.total_buckets)),
         TablePrinter::fmt(st.pairs_processed),
         TablePrinter::fmt(static_cast<std::uint64_t>(inc.num_clusters())),
         TablePrinter::fmt(st.seconds, 3)});
  }
  table.print(std::cout);

  auto scratch = pace::cluster_sequential(wl.ests, cfg);
  bool identical = inc.labels() == scratch.clusters.labels();
  std::cout << "\nFrom-scratch clustering of the full set: "
            << scratch.stats.num_clusters << " clusters in "
            << scratch.stats.t_total << " s\n"
            << "Incremental result identical to from-scratch: "
            << (identical ? "yes" : "NO") << "\n";
  return identical ? 0 : 1;
}
