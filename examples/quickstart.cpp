// Quickstart: generate a small synthetic EST set with known gene origins,
// cluster it with the sequential pipeline, and check the result against
// the ground truth.
//
//   ./quickstart [--ests 300] [--genes 20] [--seed 42]

#include <iostream>

#include "pace/sequential.hpp"
#include "quality/metrics.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  CliArgs args(argc, argv);

  sim::SimConfig wcfg;
  wcfg.num_ests = static_cast<std::size_t>(args.get_int("ests", 300));
  wcfg.num_genes = static_cast<std::size_t>(args.get_int("genes", 20));
  wcfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  wcfg.est_len_mean = 350;
  wcfg.est_len_min = 100;

  std::cout << "Generating " << wcfg.num_ests << " ESTs from "
            << wcfg.num_genes << " genes (1% substitution error, both "
            << "strands)...\n";
  sim::Workload wl = sim::generate(wcfg);

  pace::PaceConfig cfg;  // defaults: w=8, psi=20, batchsize=60
  pace::SequentialResult res = pace::cluster_sequential(wl.ests, cfg);

  std::cout << "\nClustered " << wl.ests.num_ests() << " ESTs into "
            << res.stats.num_clusters << " clusters ("
            << wcfg.num_genes << " genes in truth).\n\n";

  TablePrinter counters({"counter", "value"});
  counters.add_row({"promising pairs generated",
                    TablePrinter::fmt(res.stats.pairs_generated)});
  counters.add_row({"pairs aligned",
                    TablePrinter::fmt(res.stats.pairs_processed)});
  counters.add_row({"pairs skipped (already co-clustered)",
                    TablePrinter::fmt(res.stats.pairs_skipped)});
  counters.add_row({"alignments accepted",
                    TablePrinter::fmt(res.stats.pairs_accepted)});
  counters.add_row({"cluster merges", TablePrinter::fmt(res.stats.merges)});
  counters.print(std::cout);

  auto pc = quality::count_pairs(res.clusters.labels(), wl.truth);
  std::cout << "\nQuality vs ground truth (paper Section 4.1 metrics):\n";
  TablePrinter q({"metric", "value (%)"});
  q.add_row({"OQ (overlap quality)", TablePrinter::fmt(pc.overlap_quality())});
  q.add_row({"OV (over-prediction)", TablePrinter::fmt(pc.over_prediction())});
  q.add_row({"UN (under-prediction)",
             TablePrinter::fmt(pc.under_prediction())});
  q.add_row({"CC (correlation)", TablePrinter::fmt(pc.correlation())});
  q.print(std::cout);

  std::cout << "\nFirst clusters (EST ids):\n";
  auto clusters = res.clusters.extract_clusters();
  for (std::size_t i = 0; i < clusters.size() && i < 5; ++i) {
    std::cout << "  cluster " << i << ":";
    for (std::size_t j = 0; j < clusters[i].size() && j < 12; ++j) {
      std::cout << ' ' << clusters[i][j];
    }
    if (clusters[i].size() > 12) std::cout << " ...";
    std::cout << '\n';
  }
  return 0;
}
