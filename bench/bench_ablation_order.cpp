// Ablation: the value of decreasing-match-length pair ordering and of
// cluster-aware pair selection (§3.2).
//
// Three strategies over the identical promising-pair stream:
//   ordered    — on-demand decreasing-match-length + same-cluster skip
//                (the paper's design);
//   arbitrary  — pairs materialized and processed in an order
//                uncorrelated with match length, same-cluster skip kept;
//   all-pairs  — every promising pair aligned (what an assembler that
//                needs all overlap scores does; no skip).
// All three produce the same final clustering; the alignment counts
// quantify the paper's work saving.

#include "bench/common.hpp"
#include "pace/sequential.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);

  Reporter table("ablation_order",
                 {"ESTs", "ordered", "arbitrary", "all-pairs",
                  "saved vs all-pairs", "same clustering?"},
                 args);
  if (!table.json_mode()) {
    print_header("Ablation: pair ordering and cluster-aware selection",
                 "Section 3.2's design claims behind Fig 7");
  }
  for (std::size_t base : {250, 500, 1000, 2000}) {
    const std::size_t n = scaled(base, scale);
    auto wl = sim::generate(bench_workload_config(n));
    auto cfg = bench_pace_config();
    auto ordered = pace::cluster_sequential(wl.ests, cfg, {});
    auto arbitrary = pace::cluster_sequential(
        wl.ests, cfg, {.arbitrary_order = true});
    auto allpairs = pace::cluster_sequential(
        wl.ests, cfg, {.arbitrary_order = true, .cluster_skip = false});
    double saved =
        100.0 * (1.0 - static_cast<double>(ordered.stats.pairs_processed) /
                           static_cast<double>(std::max<std::uint64_t>(
                               1, allpairs.stats.pairs_processed)));
    bool same =
        ordered.clusters.labels() == arbitrary.clusters.labels() &&
        ordered.clusters.labels() == allpairs.clusters.labels();
    table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(n)),
                   TablePrinter::fmt(ordered.stats.pairs_processed),
                   TablePrinter::fmt(arbitrary.stats.pairs_processed),
                   TablePrinter::fmt(allpairs.stats.pairs_processed),
                   TablePrinter::fmt(saved, 1) + "%",
                   same ? "yes" : "NO"});
  }
  table.print(std::cout);
  if (!table.json_mode()) {
    std::cout << "\nExpected shape: ordered <= arbitrary << all-pairs, with "
              << "identical output.\nThe ordered-vs-arbitrary gap is the "
              << "match-length heuristic; the gap to\nall-pairs is the "
              << "cluster-aware selection both modes share.\n";
  }
  return 0;
}
