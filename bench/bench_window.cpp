// Ablation: the bucket window w (§3.1's "Care should be taken in choosing
// w. While assigning a large value to w may result in the loss of some
// potential overlapping pairs, assigning a low value will result in a
// small number of buckets for distribution among processors").
//
// Sweeps w and reports: number of buckets actually populated (the
// load-balancing resource), the largest bucket's share of all suffixes
// (the parallel bottleneck a too-small w creates), GST build character
// work, and the clustering outcome. psi stays fixed, so pair generation
// is unaffected as long as w <= psi — the sweep shows the paper's
// trade-off is about balance, not quality.

#include "bench/common.hpp"
#include "gst/builder.hpp"
#include "pace/sequential.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);
  const std::size_t n =
      scaled(static_cast<std::size_t>(args.get_int("ests", 1000)), scale);

  Reporter table("window",
                 {"w", "buckets used", "largest bucket %", "build char-ops",
                  "clusters", "pairs aligned"},
                 args);
  if (!table.json_mode()) {
    print_header("Ablation: bucket window w",
                 "Section 3.1's discussion of choosing w (paper uses w = 8 "
                 "at 81,414 ESTs)");
    std::cout << "ESTs: " << n << ", psi = 20\n\n";
  }
  auto wl = sim::generate(bench_workload_config(n));
  for (std::uint32_t w : {2u, 4u, 6u, 8u, 10u}) {
    gst::BuildCounters counters;
    auto forest = gst::build_forest_sequential(wl.ests, w, &counters);
    std::uint64_t total_occs = 0, max_occs = 0;
    for (const auto& t : forest) {
      total_occs += t.occs.size();
      max_occs = std::max<std::uint64_t>(max_occs, t.occs.size());
    }

    auto cfg = bench_pace_config();
    cfg.gst.window = w;
    auto res = pace::cluster_sequential(wl.ests, cfg);

    table.add_row(
        {TablePrinter::fmt(static_cast<std::uint64_t>(w)),
         TablePrinter::fmt(static_cast<std::uint64_t>(forest.size())),
         TablePrinter::fmt(100.0 * static_cast<double>(max_occs) /
                               static_cast<double>(total_occs),
                           2) +
             "%",
         TablePrinter::fmt(counters.chars_scanned),
         TablePrinter::fmt(static_cast<std::uint64_t>(
             res.stats.num_clusters)),
         TablePrinter::fmt(res.stats.pairs_processed)});
  }
  table.print(std::cout);
  if (!table.json_mode()) {
    std::cout << "\nExpected shape: clusters and aligned pairs identical for "
              << "every w <= psi; small w\nleaves few, large buckets (poor "
              << "parallel balance), larger w multiplies buckets\nwithout "
              << "changing the result.\n";
  }
  return 0;
}
