// Methodology reproduction (§4.1): "The results are based on the choice
// of quality threshold experimentally found to result in the least number
// of false positives and false negatives."
//
// Sweeps the acceptance ratio and reports FP, FN, FP+FN and the §4.1
// metrics; the production default (0.80) should sit at or near the
// FP+FN minimum, with the trade-off visible on both sides: a lax
// threshold admits paralog/repeat merges (FP up), a strict one fragments
// true clusters (FN up).

#include "bench/common.hpp"
#include "pace/sequential.hpp"
#include "quality/metrics.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);
  const std::size_t n =
      scaled(static_cast<std::size_t>(args.get_int("ests", 1000)), scale);

  Reporter table("threshold",
                 {"min quality", "FP", "FN", "FP+FN", "OQ", "OV", "UN",
                  "CC"},
                 args);
  auto wcfg = bench_workload_config(n);
  wcfg.num_genes = std::max<std::size_t>(2, n / 6);
  wcfg.min_exons = 4;
  wcfg.max_exons = 9;
  auto wl = sim::generate(wcfg);
  if (!table.json_mode()) {
    print_header("Methodology: choosing the acceptance threshold",
                 "Section 4.1's remark on selecting the quality threshold "
                 "minimizing FP + FN");
    std::cout << "ESTs: " << n << " (paralog/repeat-rich workload)\n\n";
  }
  for (double q : {0.60, 0.70, 0.75, 0.80, 0.85, 0.90}) {
    auto cfg = bench_pace_config();
    // The sweep isolates the *ratio* threshold, so the orthogonal
    // min-overlap defence stays at the paper-like default 40 — otherwise
    // the false-positive arm of the trade-off would be suppressed before
    // the ratio gets a say.
    cfg.overlap.min_overlap = 40;
    cfg.overlap.min_quality = q;
    auto res = pace::cluster_sequential(wl.ests, cfg);
    auto pc = quality::count_pairs(res.clusters.labels(), wl.truth);
    table.add_row({TablePrinter::fmt(q, 2), TablePrinter::fmt(pc.fp),
                   TablePrinter::fmt(pc.fn),
                   TablePrinter::fmt(pc.fp + pc.fn),
                   TablePrinter::fmt(pc.overlap_quality()),
                   TablePrinter::fmt(pc.over_prediction()),
                   TablePrinter::fmt(pc.under_prediction()),
                   TablePrinter::fmt(pc.correlation())});
  }
  table.print(std::cout);
  if (!table.json_mode()) {
    std::cout << "\nExpected shape: FP falls and FN rises as the threshold "
              << "tightens; FP+FN is\nminimized near the production default "
              << "(0.80), which is how the paper chose its\nthreshold.\n";
  }
  return 0;
}
