// Ablation: the DFS-array GST storage of §3.1 versus conventional
// pointer-based nodes.
//
// The paper stores one rightmost-leaf pointer per node in DFS order; this
// bench builds the same trees in a textbook child-pointer representation
// and compares bytes per input character and full-traversal time.

#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "gst/builder.hpp"
#include "util/timer.hpp"

namespace {

using namespace estclust;

/// Textbook representation: each node owns a child vector.
struct PointerNode {
  std::uint32_t depth = 0;
  std::vector<std::unique_ptr<PointerNode>> children;
  std::vector<gst::SuffixOcc> occs;

  std::size_t bytes() const {
    std::size_t b = sizeof(PointerNode) +
                    children.capacity() * sizeof(std::unique_ptr<PointerNode>) +
                    occs.capacity() * sizeof(gst::SuffixOcc);
    for (const auto& c : children) b += c->bytes();
    return b;
  }
};

std::unique_ptr<PointerNode> to_pointer_tree(const gst::Tree& t,
                                             std::uint32_t v) {
  auto node = std::make_unique<PointerNode>();
  node->depth = t.depth(v);
  if (t.is_leaf(v)) {
    auto occs = t.occurrences(v);
    node->occs.assign(occs.begin(), occs.end());
  } else {
    t.for_each_child(v, [&](std::uint32_t u) {
      node->children.push_back(to_pointer_tree(t, u));
    });
  }
  return node;
}

std::uint64_t traverse_pointer(const PointerNode& n) {
  std::uint64_t sum = n.depth + n.occs.size();
  for (const auto& c : n.children) sum += traverse_pointer(*c);
  return sum;
}

std::uint64_t traverse_dfs_array(const gst::Tree& t) {
  std::uint64_t sum = 0;
  for (std::uint32_t v = 0; v < t.size(); ++v) {
    sum += t.depth(v);
    if (t.is_leaf(v)) sum += t.occurrences(v).size();
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);

  Reporter table("ablation_storage",
                 {"ESTs", "input chars", "DFS-array bytes/char",
                  "pointer bytes/char", "space ratio", "traverse speedup"},
                 args);
  if (!table.json_mode()) {
    print_header("Ablation: DFS-array GST storage vs pointer nodes",
                 "Section 3.1's space-efficient tree layout ('each node "
                 "contains a single pointer to the rightmost leaf node in "
                 "its subtree')");
  }
  for (std::size_t base : {250, 500, 1000}) {
    const std::size_t n = scaled(base, scale);
    auto wl = sim::generate(bench_workload_config(n));
    auto forest = gst::build_forest_sequential(wl.ests, 8);

    std::size_t dfs_bytes = 0;
    for (const auto& t : forest) dfs_bytes += t.storage_bytes();

    std::size_t ptr_bytes = 0;
    std::vector<std::unique_ptr<PointerNode>> ptr_forest;
    for (const auto& t : forest) {
      ptr_forest.push_back(to_pointer_tree(t, 0));
      ptr_bytes += ptr_forest.back()->bytes();
    }

    // Traversal timing: repeat to get stable numbers; volatile sinks keep
    // the compiler from eliding the walks.
    const int reps = 50;
    volatile std::uint64_t sink = 0;
    WallTimer t1;
    for (int r = 0; r < reps; ++r) {
      for (const auto& t : forest) sink = sink + traverse_dfs_array(t);
    }
    double dfs_time = t1.seconds();
    WallTimer t2;
    for (int r = 0; r < reps; ++r) {
      for (const auto& p : ptr_forest) sink = sink + traverse_pointer(*p);
    }
    double ptr_time = t2.seconds();

    const double chars = static_cast<double>(wl.ests.total_string_chars());
    table.add_row(
        {TablePrinter::fmt(static_cast<std::uint64_t>(n)),
         TablePrinter::fmt(static_cast<std::uint64_t>(chars)),
         TablePrinter::fmt(dfs_bytes / chars, 2),
         TablePrinter::fmt(ptr_bytes / chars, 2),
         TablePrinter::fmt(static_cast<double>(ptr_bytes) / dfs_bytes, 2) +
             "x",
         TablePrinter::fmt(ptr_time / std::max(dfs_time, 1e-9), 2) + "x"});
  }
  table.print(std::cout);
  if (!table.json_mode()) {
    std::cout << "\nExpected shape: the DFS-array layout is several times "
              << "smaller and traverses\nfaster (contiguous memory), at "
              << "identical information content.\n";
  }
  return 0;
}
