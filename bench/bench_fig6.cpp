// Figure 6 reproduction.
//  (a) parallel run-time as a function of processor count for several
//      data sizes — curves fall with p and larger inputs sit higher;
//  (b) run-time as a function of data size at a fixed processor count —
//      growth is modest and smooth (near-linear in input size).

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);

  const std::vector<std::size_t> sizes = {
      scaled(250, scale), scaled(500, scale), scaled(1000, scale),
      scaled(2000, scale)};
  const std::vector<int> procs = {1, 2, 4, 8, 16, 32, 64, 128};

  auto cfg = bench_pace_config();

  Reporter a("fig6a",
             {"p", "n=" + std::to_string(sizes[0]),
              "n=" + std::to_string(sizes[1]),
              "n=" + std::to_string(sizes[2]),
              "n=" + std::to_string(sizes[3])},
             args);
  if (!a.json_mode()) {
    print_header("Figure 6a: run-time vs number of processors",
                 "Fig 6a (n = 10k, 20k, 40k, 81,414; p up to 128)");
  }
  // Generate each workload once and reuse across p.
  std::vector<sim::Workload> workloads;
  for (std::size_t n : sizes) {
    workloads.push_back(sim::generate(bench_workload_config(n)));
  }
  std::vector<std::vector<double>> times(procs.size());
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    std::vector<std::string> row = {
        TablePrinter::fmt(static_cast<std::uint64_t>(procs[pi]))};
    for (auto& wl : workloads) {
      auto res = run_parallel(wl.ests, cfg, procs[pi]);
      times[pi].push_back(res.stats.t_total);
      row.push_back(TablePrinter::fmt(res.stats.t_total, 3));
    }
    a.add_row(row);
  }
  a.print(std::cout);
  if (!a.json_mode()) {
    std::cout << "\n(virtual seconds; each column should fall with p, "
              << "larger n sits higher)\n";
  }

  Reporter b("fig6b", {"ESTs", "run-time (virt s)"}, args);
  if (!b.json_mode()) {
    print_header("Figure 6b: run-time vs data size at fixed p",
                 "Fig 6b (run-time vs number of ESTs, p = 64)");
  }
  const int fixed_p = static_cast<int>(args.get_int("p", 64));
  std::size_t p_idx = 0;
  while (p_idx + 1 < procs.size() && procs[p_idx] != fixed_p) ++p_idx;
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    b.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(sizes[si])),
               TablePrinter::fmt(times[p_idx][si], 3)});
  }
  b.print(std::cout);
  return 0;
}
