// Extension benchmark: incremental clustering (the §5 open problem) vs
// re-clustering from scratch after each new sequencing batch.
//
// Shape to check: per-batch incremental cost stays roughly flat (only
// dirty buckets are re-refined and only pairs touching new ESTs are
// considered) while the cumulative from-scratch strategy grows with every
// batch; results are identical throughout.

#include "bench/common.hpp"
#include "pace/incremental.hpp"
#include "pace/sequential.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);
  const std::size_t initial =
      scaled(static_cast<std::size_t>(args.get_int("initial", 1500)), scale);
  const std::size_t update =
      scaled(static_cast<std::size_t>(args.get_int("update", 75)), scale);
  const std::size_t updates =
      static_cast<std::size_t>(args.get_int("updates", 4));

  Reporter table("incremental",
                 {"event", "cumulative ESTs", "incremental (s)",
                  "from-scratch (s)", "speedup", "aligned (inc)",
                  "aligned (scratch)", "identical?"},
                 args);
  const std::size_t n = initial + update * updates;
  auto wl = sim::generate(bench_workload_config(n));
  auto cfg = bench_pace_config();
  if (!table.json_mode()) {
    print_header("Extension: incremental clustering vs from-scratch",
                 "Section 5's open problem: 'Is there a way to incrementally "
                 "adjust the EST clusters when a new batch of ESTs is "
                 "sequenced?'");
    std::cout << "Initial library: " << initial << " ESTs; then " << updates
              << " sequencing batches of " << update << "\n\n";
  }
  pace::IncrementalClusterer inc(cfg);
  std::vector<bio::Sequence> so_far;
  std::size_t next = 0;
  auto feed = [&](std::size_t count, const std::string& name) {
    std::vector<bio::Sequence> batch;
    for (std::size_t k = 0; k < count && next < n; ++k, ++next) {
      batch.push_back(wl.ests.est(static_cast<bio::EstId>(next)));
      so_far.push_back(batch.back());
    }
    auto st = inc.add_batch(std::move(batch));

    bio::EstSet prefix_set(so_far);
    WallTimer t;
    auto scratch = pace::cluster_sequential(prefix_set, cfg);
    double scratch_time = t.seconds();

    table.add_row(
        {name, TablePrinter::fmt(static_cast<std::uint64_t>(so_far.size())),
         TablePrinter::fmt(st.seconds, 3),
         TablePrinter::fmt(scratch_time, 3),
         TablePrinter::fmt(scratch_time / std::max(st.seconds, 1e-9), 1) +
             "x",
         TablePrinter::fmt(st.pairs_processed),
         TablePrinter::fmt(scratch.stats.pairs_processed),
         inc.labels() == scratch.clusters.labels() ? "yes" : "NO"});
  };
  feed(initial, "initial load");
  for (std::size_t u = 0; u < updates; ++u) {
    feed(update, "update " + std::to_string(u + 1));
  }
  table.print(std::cout);
  if (!table.json_mode()) {
    std::cout << "\nExpected shape: updates cost a fraction of re-clustering "
              << "the grown library\n(only dirty buckets re-refined, only "
              << "pairs touching new ESTs aligned); outputs\nidentical at "
              << "every step.\n";
  }
  return 0;
}
