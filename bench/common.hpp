// Shared helpers for the experiment-reproduction benches.
//
// Every bench accepts --scale S (or env ESTCLUST_BENCH_SCALE) to multiply
// the default problem sizes toward the paper's 81,414-EST runs; defaults
// finish in seconds on one core. Sizes are reported in every table so the
// output is self-describing.
#pragma once

#include <cstdint>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "mpr/runtime.hpp"
#include "pace/config.hpp"
#include "pace/parallel.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace estclust::bench {

inline double parse_scale(const CliArgs& args) {
  double s = args.get_double("scale", 1.0);
  if (s == 1.0) {
    s = static_cast<double>(CliArgs::env_int("ESTCLUST_BENCH_SCALE", 1));
  }
  return s <= 0 ? 1.0 : s;
}

inline std::size_t scaled(std::size_t base, double scale) {
  return static_cast<std::size_t>(static_cast<double>(base) * scale);
}

/// Paper-typical pipeline parameters, shrunk to the bench EST length.
inline pace::PaceConfig bench_pace_config() {
  pace::PaceConfig cfg;
  // The paper uses w = 8 for 81k ESTs (4^8 = 65k buckets). The bench data
  // is ~40x smaller, so the proportionate window is w = 6 (4^6 = 4k
  // buckets) — with w = 8 the fixed histogram cost would swamp the
  // partitioning phase at these sizes.
  cfg.gst.window = 6;
  cfg.psi = 20;
  cfg.batchsize = 60;    // paper: "batchsize is chosen to be sixty pairs"
  // Overlap evidence must exceed the length of any repeat element in the
  // bench workload (70 bases, below): a pair whose only shared sequence
  // is a repeat then cannot clear the bar, the same defence assemblers
  // get from repeat masking.
  cfg.overlap.min_overlap = 100;
  return cfg;
}

inline sim::SimConfig bench_workload_config(std::size_t num_ests,
                                            std::uint64_t seed = 20020811) {
  sim::SimConfig cfg = sim::scaled_config(num_ests, seed);
  cfg.est_len_mean = 400;  // paper: average EST length ~500-600
  cfg.est_len_stddev = 80;
  cfg.est_len_min = 120;
  cfg.sub_rate = 0.02;  // noisier reads: some alignments get rejected
  cfg.ins_rate = 0.005;
  cfg.del_rate = 0.005;
  // Gene families and repeats: the realistic sources of promising pairs
  // that fail alignment (Fig 7's processed >> accepted gap) and of the
  // paper's small but nonzero over-prediction.
  cfg.paralog_fraction = 0.3;
  cfg.paralog_divergence = 0.15;
  cfg.repeat_prob = 0.2;
  cfg.repeat_len = 70;  // kept below min_overlap (see bench_pace_config)
  cfg.repeat_divergence = 0.10;
  return cfg;
}

/// Runs the parallel clustering at rank count p and returns rank 0's view.
inline pace::ParallelResult run_parallel(const bio::EstSet& ests,
                                         const pace::PaceConfig& cfg,
                                         int p) {
  mpr::Runtime rt(p, mpr::CostModel{});
  pace::ParallelResult result;
  std::mutex mu;
  rt.run([&](mpr::Communicator& comm) {
    auto res = pace::cluster_parallel(comm, ests, cfg);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(res);
    }
  });
  return result;
}

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "Reproduces: " << paper_ref << "\n\n";
}

}  // namespace estclust::bench
