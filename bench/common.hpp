// Shared helpers for the experiment-reproduction benches.
//
// Every bench accepts --scale S (or env ESTCLUST_BENCH_SCALE) to multiply
// the default problem sizes toward the paper's 81,414-EST runs; defaults
// finish in seconds on one core. Sizes are reported in every table so the
// output is self-describing.
#pragma once

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "mpr/mailbox.hpp"
#include "mpr/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "pace/config.hpp"
#include "pace/messages.hpp"
#include "pace/parallel.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace estclust::bench {

inline double parse_scale(const CliArgs& args) {
  double s = args.get_double("scale", 1.0);
  if (s == 1.0) {
    s = static_cast<double>(CliArgs::env_int("ESTCLUST_BENCH_SCALE", 1));
  }
  return s <= 0 ? 1.0 : s;
}

inline std::size_t scaled(std::size_t base, double scale) {
  return static_cast<std::size_t>(static_cast<double>(base) * scale);
}

/// Paper-typical pipeline parameters, shrunk to the bench EST length.
inline pace::PaceConfig bench_pace_config() {
  pace::PaceConfig cfg;
  // The paper uses w = 8 for 81k ESTs (4^8 = 65k buckets). The bench data
  // is ~40x smaller, so the proportionate window is w = 6 (4^6 = 4k
  // buckets) — with w = 8 the fixed histogram cost would swamp the
  // partitioning phase at these sizes.
  cfg.gst.window = 6;
  cfg.psi = 20;
  cfg.batchsize = 60;    // paper: "batchsize is chosen to be sixty pairs"
  // Overlap evidence must exceed the length of any repeat element in the
  // bench workload (70 bases, below): a pair whose only shared sequence
  // is a repeat then cannot clear the bar, the same defence assemblers
  // get from repeat masking.
  cfg.overlap.min_overlap = 100;
  return cfg;
}

inline sim::SimConfig bench_workload_config(std::size_t num_ests,
                                            std::uint64_t seed = 20020811) {
  sim::SimConfig cfg = sim::scaled_config(num_ests, seed);
  cfg.est_len_mean = 400;  // paper: average EST length ~500-600
  cfg.est_len_stddev = 80;
  cfg.est_len_min = 120;
  cfg.sub_rate = 0.02;  // noisier reads: some alignments get rejected
  cfg.ins_rate = 0.005;
  cfg.del_rate = 0.005;
  // Gene families and repeats: the realistic sources of promising pairs
  // that fail alignment (Fig 7's processed >> accepted gap) and of the
  // paper's small but nonzero over-prediction.
  cfg.paralog_fraction = 0.3;
  cfg.paralog_divergence = 0.15;
  cfg.repeat_prob = 0.2;
  cfg.repeat_len = 70;  // kept below min_overlap (see bench_pace_config)
  cfg.repeat_divergence = 0.10;
  return cfg;
}

/// ProfileOptions with the pace protocol's tag names, for bench profiles.
inline obs::ProfileOptions bench_profile_options() {
  obs::ProfileOptions opts;
  opts.tag_names = {{pace::kTagReport, "REPORT"},
                    {pace::kTagAssign, "ASSIGN"},
                    {pace::kTagAck, "ACK"},
                    {pace::kTagHeartbeat, "HEARTBEAT"}};
  opts.internal_tag_base = mpr::kInternalTagBase;
  opts.recv_overhead = mpr::CostModel{}.recv_overhead;
  return opts;
}

/// A parallel bench run plus its observability products: the merged
/// metrics registry (every counter/gauge the pipeline published), the
/// per-rank virtual busy/comm/idle split, and — for traced runs — the
/// critical-path profile.
struct BenchRun {
  pace::ParallelResult result;
  obs::MetricsRegistry metrics;
  std::vector<obs::RankTime> rank_times;
  obs::Profile profile;       ///< populated iff has_profile
  bool has_profile = false;   ///< true when cfg.trace enabled the recorder
};

/// Runs the parallel clustering at rank count p and returns rank 0's view
/// together with the runtime's merged metrics. Honors cfg.trace; traced
/// runs also get the critical-path profile (pure post-processing — the
/// run itself is bit-identical either way).
inline BenchRun run_parallel_obs(const bio::EstSet& ests,
                                 const pace::PaceConfig& cfg, int p) {
  mpr::Runtime rt(p, mpr::CostModel{});
  if (cfg.trace) rt.enable_tracing(cfg.trace_message_flows);
  BenchRun run;
  std::mutex mu;
  rt.run([&](mpr::Communicator& comm) {
    auto res = pace::cluster_parallel(comm, ests, cfg);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      run.result = std::move(res);
    }
  });
  run.metrics = rt.merged_metrics();
  run.rank_times = rt.rank_times();
  if (rt.tracer() != nullptr) {
    run.profile = obs::build_profile(*rt.tracer(), run.rank_times,
                                     bench_profile_options());
    run.has_profile = true;
  }
  return run;
}

/// Runs the parallel clustering at rank count p and returns rank 0's view.
inline pace::ParallelResult run_parallel(const bio::EstSet& ests,
                                         const pace::PaceConfig& cfg,
                                         int p) {
  return run_parallel_obs(ests, cfg, p).result;
}

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "Reproduces: " << paper_ref << "\n\n";
}

/// Emits bench rows either as a fixed-width table (default) or, with
/// --json, as one machine-readable JSON object per row on stdout. Keys are
/// derived from the column headers; numeric cells stay unquoted. In JSON
/// mode each row is emitted as soon as it is added, so partial output from
/// an interrupted sweep is still usable. Each JSON row also carries
/// `wall_s` — the real wall-clock seconds spent since the previous row
/// (or since construction) — next to the modeled virtual times, so
/// simulator cost is observable without affecting any table or gate.
class Reporter {
 public:
  Reporter(std::string bench_name, std::vector<std::string> headers,
           const CliArgs& args)
      : bench_(std::move(bench_name)),
        headers_(headers),
        json_(args.has_flag("json")),
        table_(std::move(headers)),
        last_row_time_(std::chrono::steady_clock::now()) {}

  void add_row(std::vector<std::string> cells) {
    if (json_) {
      const auto now = std::chrono::steady_clock::now();
      const double wall_s =
          std::chrono::duration<double>(now - last_row_time_).count();
      last_row_time_ = now;
      std::cout << "{\"bench\":\"" << json_escape(bench_) << "\"";
      for (std::size_t i = 0; i < cells.size() && i < headers_.size(); ++i) {
        std::cout << ",\"" << key_of(headers_[i]) << "\":";
        if (is_numeric(cells[i])) {
          std::cout << cells[i];
        } else {
          std::cout << '"' << json_escape(cells[i]) << '"';
        }
      }
      // %.17g, the round-trip-exact convention used everywhere else
      // (obs/profile.cpp): %.6f truncated sub-microsecond rows to 0 and a
      // comma-decimal locale would break every --json consumer. snprintf
      // still honors the C locale's decimal point, so normalize defensively.
      char wall[64];
      std::snprintf(wall, sizeof(wall), "%.17g", wall_s);
      for (char* p = wall; *p; ++p) {
        if (*p == ',') *p = '.';
      }
      std::cout << ",\"wall_s\":" << wall << "}\n";
    }
    table_.add_row(std::move(cells));
  }

  /// Prints the accumulated fixed-width table (no-op in --json mode, where
  /// every row has already been streamed out).
  void print(std::ostream& os) const {
    if (!json_) table_.print(os);
  }

  bool json_mode() const { return json_; }

 private:
  static std::string key_of(const std::string& header) {
    std::string key;
    bool last_sep = true;  // avoid a leading underscore
    for (char c : header) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        key.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
        last_sep = false;
      } else if (!last_sep) {
        key.push_back('_');
        last_sep = true;
      }
    }
    while (!key.empty() && key.back() == '_') key.pop_back();
    return key.empty() ? "col" : key;
  }

  static bool is_numeric(const std::string& s) {
    if (s.empty()) return false;
    char* end = nullptr;
    std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0' && end != s.c_str();
  }

  static std::string json_escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string bench_;
  std::vector<std::string> headers_;
  bool json_;
  TablePrinter table_;
  std::chrono::steady_clock::time_point last_row_time_;
};

}  // namespace estclust::bench
