// Figure 8 reproduction: run-time versus batchsize at fixed n and p, plus
// the master-utilization claim of §4.2.
//
// Shapes to check: (1) small batches inflate run-time (communication
// overhead); large batches flatten out or rise slightly (slaves act on
// staler cluster state, so more redundant alignments slip through) — the
// sweet spot in the paper is 40-60; (2) the master stays busy well under
// 2% of the time even at high processor counts.
//
// Master-busy numbers come from the trace-derived critical-path profile
// (rank 0's master_* span time over the makespan) — the same measure
// `estclust --profile` reports and tools/profile/critpath.py tabulates.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);
  const std::size_t n = scaled(
      static_cast<std::size_t>(args.get_int("ests", 1000)), scale);
  const int p = static_cast<int>(args.get_int("p", 32));

  // Each batchsize is run twice: with the multiplier frozen (the paper's
  // fixed-batch protocol) and with adaptive batching enabled, so the
  // before/after effect of the hot-path flow control is visible at every
  // point of the sweep.
  Reporter table("fig8",
                 {"batchsize", "run-time fixed", "run-time adaptive",
                  "msgs fixed", "msgs adaptive", "pairs aligned"},
                 args);
  if (!table.json_mode()) {
    print_header("Figure 8: run-time vs batchsize",
                 "Fig 8 (20,000 ESTs on 32 processors, batchsize 4..80)");
    std::cout << "ESTs: " << n << ", p = " << p << "\n\n";
  }

  auto wl = sim::generate(bench_workload_config(n));

  for (std::size_t batch : {1, 2, 4, 10, 20, 40, 60, 80}) {
    auto cfg_fixed = bench_pace_config();
    cfg_fixed.batchsize = batch;
    cfg_fixed.adaptive_batch = false;
    auto fixed = run_parallel_obs(wl.ests, cfg_fixed, p);
    auto cfg_adaptive = cfg_fixed;
    cfg_adaptive.adaptive_batch = true;
    auto adaptive = run_parallel_obs(wl.ests, cfg_adaptive, p);
    table.add_row(
        {TablePrinter::fmt(static_cast<std::uint64_t>(batch)),
         TablePrinter::fmt(fixed.result.stats.t_total, 3),
         TablePrinter::fmt(adaptive.result.stats.t_total, 3),
         TablePrinter::fmt(
             fixed.metrics.counter_value("mpr.messages_sent")),
         TablePrinter::fmt(
             adaptive.metrics.counter_value("mpr.messages_sent")),
         TablePrinter::fmt(adaptive.result.stats.pairs_processed)});
  }
  table.print(std::cout);

  if (!table.json_mode()) {
    std::cout << "\nMaster utilization vs processor count (the <2% claim of "
              << "Section 4.2):\n\n";
  }
  // The busy fraction amortizes with per-slave work, so it falls as the
  // input grows; the paper's <2% was measured at 20,000 ESTs. Two sizes
  // make the trend visible at bench scale.
  const std::size_t n2 = scaled(
      static_cast<std::size_t>(args.get_int("ests2", 3000)), scale);
  auto wl2 = sim::generate(bench_workload_config(n2));
  Reporter busy("fig8_master_busy",
                {"p", "master busy % (n=" + std::to_string(n) + ")",
                 "master busy % (n=" + std::to_string(n2) + ")"},
                args);
  auto cfg = bench_pace_config();
  cfg.trace = true;  // the utilization table is measured from the trace
  for (int pp : {8, 16, 32, 64, 128}) {
    auto run1 = run_parallel_obs(wl.ests, cfg, pp);
    auto run2 = run_parallel_obs(wl2.ests, cfg, pp);
    busy.add_row(
        {TablePrinter::fmt(static_cast<std::uint64_t>(pp)),
         TablePrinter::fmt(100.0 * run1.profile.master_utilization, 3),
         TablePrinter::fmt(100.0 * run2.profile.master_utilization, 3)});
  }
  busy.print(std::cout);
  if (!busy.json_mode()) {
    std::cout << "\nExpected shape: the fraction falls as the input grows "
              << "(more alignment work per\ninteraction); at the paper's "
              << "20,000-EST scale it stays well under 2%.\n";
  }
  return 0;
}
