// Figure 7 reproduction: pairs generated / processed (aligned) / accepted
// as a function of data size.
//
// Shape to check: generated grows fastest; processed stays a small
// fraction of generated (the on-demand decreasing-match-length order lets
// the evolving clusters veto most pairs before alignment); accepted sits
// below processed.

#include "bench/common.hpp"
#include "pace/sequential.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);

  Reporter table("fig7",
                 {"ESTs", "generated", "processed", "accepted",
                  "processed/generated"},
                 args);
  if (!table.json_mode()) {
    print_header("Figure 7: promising pairs vs number of ESTs",
                 "Fig 7 (pairs generated / processed / accepted vs n)");
  }
  for (std::size_t base : {250, 500, 1000, 1500, 2000}) {
    const std::size_t n = scaled(base, scale);
    auto wl = sim::generate(bench_workload_config(n));
    auto res = pace::cluster_sequential(wl.ests, bench_pace_config());
    const auto& st = res.stats;
    table.add_row(
        {TablePrinter::fmt(static_cast<std::uint64_t>(n)),
         TablePrinter::fmt(st.pairs_generated),
         TablePrinter::fmt(st.pairs_processed),
         TablePrinter::fmt(st.pairs_accepted),
         TablePrinter::fmt(
             100.0 * static_cast<double>(st.pairs_processed) /
                 static_cast<double>(std::max<std::uint64_t>(
                     1, st.pairs_generated)),
             1) +
             "%"});
  }
  table.print(std::cout);
  if (!table.json_mode()) {
    std::cout << "\nExpected shape: 'processed' a small, shrinking fraction "
              << "of 'generated'\n(the run-time saving of on-demand ordered "
              << "generation); accepted <= processed.\n";
  }
  return 0;
}
