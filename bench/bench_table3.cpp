// Table 3 reproduction: virtual time spent in each component of parallel
// clustering as the processor count grows (paper: 20,000 ESTs, p = 8..128).
//
// Shape to check: every component shrinks roughly linearly with p; GST
// construction dominates partitioning and sorting; alignment and GST
// construction are the two largest contributors.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);
  const std::size_t n = scaled(
      static_cast<std::size_t>(args.get_int("ests", 1000)), scale);

  print_header("Table 3: per-component times vs processor count",
               "Table 3 (partitioning / GST construction / node sorting / "
               "pairwise alignment / total, 20,000 ESTs, p = 8..128)");
  std::cout << "ESTs: " << n << "  (virtual seconds, LogP cost model)\n\n";

  auto wl = sim::generate(bench_workload_config(n));
  auto cfg = bench_pace_config();

  TablePrinter table({"p", "partitioning", "GST build", "node sorting",
                      "alignment loop", "total"});
  for (int p : {8, 16, 32, 64, 128}) {
    auto res = run_parallel(wl.ests, cfg, p);
    const auto& st = res.stats;
    table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(p)),
                   TablePrinter::fmt(st.t_partition, 3),
                   TablePrinter::fmt(st.t_gst, 3),
                   TablePrinter::fmt(st.t_sort, 3),
                   TablePrinter::fmt(st.t_align, 3),
                   TablePrinter::fmt(st.t_total, 3)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: each column shrinks as p grows; GST "
            << "construction and the\nalignment loop dominate, as in the "
            << "paper's Table 3.\n";
  return 0;
}
