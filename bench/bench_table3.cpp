// Table 3 reproduction: virtual time spent in each component of parallel
// clustering as the processor count grows (paper: 20,000 ESTs, p = 8..128).
//
// Shape to check: every component shrinks roughly linearly with p; GST
// construction dominates partitioning and sorting; alignment and GST
// construction are the two largest contributors.
//
// Per-component rows come from the runtime's merged MetricsRegistry (the
// pace.t_* gauges published by the pipeline), not ad-hoc timers, so this
// bench doubles as an end-to-end check of the observability plumbing.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);
  const std::size_t n = scaled(
      static_cast<std::size_t>(args.get_int("ests", 1000)), scale);

  Reporter table("table3",
                 {"p", "partitioning", "GST build", "node sorting",
                  "alignment loop", "total"},
                 args);
  if (!table.json_mode()) {
    print_header("Table 3: per-component times vs processor count",
                 "Table 3 (partitioning / GST construction / node sorting / "
                 "pairwise alignment / total, 20,000 ESTs, p = 8..128)");
    std::cout << "ESTs: " << n << "  (virtual seconds, LogP cost model)\n\n";
  }

  auto wl = sim::generate(bench_workload_config(n));
  auto cfg = bench_pace_config();

  for (int p : {8, 16, 32, 64, 128}) {
    auto run = run_parallel_obs(wl.ests, cfg, p);
    const auto& m = run.metrics;
    table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(p)),
                   TablePrinter::fmt(m.gauge_value("pace.t_partition"), 3),
                   TablePrinter::fmt(m.gauge_value("pace.t_gst"), 3),
                   TablePrinter::fmt(m.gauge_value("pace.t_sort"), 3),
                   TablePrinter::fmt(m.gauge_value("pace.t_align"), 3),
                   TablePrinter::fmt(m.gauge_value("pace.t_total"), 3)});
  }
  table.print(std::cout);
  if (!table.json_mode()) {
    std::cout << "\nExpected shape: each column shrinks as p grows; GST "
              << "construction and the\nalignment loop dominate, as in the "
              << "paper's Table 3.\n";
  }
  return 0;
}
