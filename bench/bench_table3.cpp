// Table 3 reproduction: virtual time spent in each component of parallel
// clustering as the processor count grows (paper: 20,000 ESTs, p = 8..128).
//
// Shape to check: every component shrinks roughly linearly with p; GST
// construction dominates partitioning and sorting; alignment and GST
// construction are the two largest contributors.
//
// Per-component rows come from the runtime's merged MetricsRegistry (the
// pace.t_* gauges published by the pipeline), not ad-hoc timers, so this
// bench doubles as an end-to-end check of the observability plumbing.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);
  const std::size_t n = scaled(
      static_cast<std::size_t>(args.get_int("ests", 1000)), scale);

  Reporter table("table3",
                 {"p", "partitioning", "GST build", "node sorting",
                  "alignment loop", "total"},
                 args);
  if (!table.json_mode()) {
    print_header("Table 3: per-component times vs processor count",
                 "Table 3 (partitioning / GST construction / node sorting / "
                 "pairwise alignment / total, 20,000 ESTs, p = 8..128)");
    std::cout << "ESTs: " << n << "  (virtual seconds, LogP cost model)\n\n";
  }

  auto wl = sim::generate(bench_workload_config(n));
  auto cfg = bench_pace_config();

  for (int p : {8, 16, 32, 64, 128}) {
    auto run = run_parallel_obs(wl.ests, cfg, p);
    const auto& m = run.metrics;
    table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(p)),
                   TablePrinter::fmt(m.gauge_value("pace.t_partition"), 3),
                   TablePrinter::fmt(m.gauge_value("pace.t_gst"), 3),
                   TablePrinter::fmt(m.gauge_value("pace.t_sort"), 3),
                   TablePrinter::fmt(m.gauge_value("pace.t_align"), 3),
                   TablePrinter::fmt(m.gauge_value("pace.t_total"), 3)});
  }
  table.print(std::cout);
  if (!table.json_mode()) {
    std::cout << "\nExpected shape: each column shrinks as p grows; GST "
              << "construction and the\nalignment loop dominate, as in the "
              << "paper's Table 3.\n";
  }

  // Interaction volume, legacy engine vs the hot path (memo + bounded
  // kernel + adaptive batching). Adaptive batching grows the per-slave
  // grant while redundancy is low, so the hot path must close each run in
  // no more master<->slave messages than the fixed-batch legacy config.
  Reporter msgs("table3_messages",
                {"p", "msgs legacy", "msgs hotpath", "t legacy",
                 "t hotpath"},
                args);
  if (!msgs.json_mode()) {
    std::cout << "\nTotal messages (all ranks), legacy vs hot-path "
              << "engine:\n\n";
  }
  for (int p : {8, 16, 32, 64, 128}) {
    auto legacy_cfg = cfg;
    legacy_cfg.memo = false;
    legacy_cfg.bounded_align = false;
    legacy_cfg.adaptive_batch = false;
    auto legacy = run_parallel_obs(wl.ests, legacy_cfg, p);
    auto hot = run_parallel_obs(wl.ests, cfg, p);
    msgs.add_row(
        {TablePrinter::fmt(static_cast<std::uint64_t>(p)),
         TablePrinter::fmt(
             legacy.metrics.counter_value("mpr.messages_sent")),
         TablePrinter::fmt(hot.metrics.counter_value("mpr.messages_sent")),
         TablePrinter::fmt(
             legacy.metrics.gauge_value("pace.t_total"), 3),
         TablePrinter::fmt(hot.metrics.gauge_value("pace.t_total"), 3)});
  }
  msgs.print(std::cout);
  if (!msgs.json_mode()) {
    std::cout << "\nExpected shape: the hot path sends fewer messages than "
              << "the legacy\nconfiguration at every p. At small p it may "
              << "trade a few percent of virtual\ntime for that (larger "
              << "grants act on staler cluster state); at large p the\n"
              << "saved interactions win outright.\n";
  }
  return 0;
}
