// Microbenchmarks of the alignment kernels (google-benchmark): full
// Needleman-Wunsch vs banded global vs the production anchored extension,
// quantifying §3.3's "limits the area of computation" claim.

#include <benchmark/benchmark.h>

#include <string>

#include "align/anchored.hpp"
#include "align/banded.hpp"
#include "align/nw.hpp"
#include "bio/alphabet.hpp"
#include "util/prng.hpp"

namespace {

using namespace estclust;

std::string random_dna(Prng& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = bio::decode_base(static_cast<int>(rng.uniform(4)));
  return s;
}

/// Builds a dovetail pair with ~1.5% errors and a clean central anchor.
struct OverlapCase {
  std::string a, b;
  align::Anchor anchor;
};

OverlapCase make_case(std::size_t len) {
  Prng rng(len);
  std::string shared = random_dna(rng, len);
  // Introduce scattered substitutions outside a central exact core.
  std::string noisy = shared;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    bool in_core = i >= len / 2 - 10 && i < len / 2 + 10;
    if (!in_core && rng.bernoulli(0.015)) {
      noisy[i] = bio::decode_base(
          (bio::encode_base(noisy[i]) + 1 + static_cast<int>(rng.uniform(3))) %
          4);
    }
  }
  OverlapCase c;
  c.a = random_dna(rng, len) + shared;
  c.b = noisy + random_dna(rng, len);
  c.anchor = {c.a.size() - len + len / 2 - 10, len / 2 - 10, 20};
  return c;
}

void BM_FullNW(benchmark::State& state) {
  auto c = make_case(static_cast<std::size_t>(state.range(0)));
  align::Scoring sc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::global_align(c.a, c.b, sc).score);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullNW)->Arg(100)->Arg(200)->Arg(400)->Complexity();

void BM_BandedGlobal(benchmark::State& state) {
  auto c = make_case(static_cast<std::size_t>(state.range(0)));
  align::Scoring sc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::banded_global_score(c.a, c.b, sc, 8));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BandedGlobal)->Arg(100)->Arg(200)->Arg(400)->Complexity();

void BM_AnchoredExtension(benchmark::State& state) {
  auto c = make_case(static_cast<std::size_t>(state.range(0)));
  align::OverlapParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        align::align_anchored(c.a, c.b, c.anchor, params).score);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AnchoredExtension)->Arg(100)->Arg(200)->Arg(400)->Complexity();

void BM_SmithWaterman(benchmark::State& state) {
  auto c = make_case(static_cast<std::size_t>(state.range(0)));
  align::Scoring sc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::local_align(c.a, c.b, sc).score);
  }
}
BENCHMARK(BM_SmithWaterman)->Arg(100)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
