// Alignment hot-path microbench: virtual-time work units (DP cells) per
// accepted pair under the three engine configurations, plus the per-kernel
// "area of computation" table behind §3.3's banding claim.
//
// Work is counted in DP cells — the unit the LogP cost model charges — so
// every number here is deterministic and byte-reproducible, and the
// bench_smoke ctest can assert the hot-path speedup (and its non-
// regression against tests/data/bench_baseline.json) exactly.

#include "bench/common.hpp"

#include "align/kernel.hpp"
#include "align/nw.hpp"
#include "bio/alphabet.hpp"
#include "pace/sequential.hpp"
#include "util/prng.hpp"

namespace {

using namespace estclust;

std::string random_dna(Prng& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = bio::decode_base(static_cast<int>(rng.uniform(4)));
  return s;
}

/// A dovetail pair with ~1.5% errors and a clean central anchor.
struct OverlapCase {
  std::string a, b;
  align::Anchor anchor;
};

OverlapCase make_case(std::size_t len) {
  Prng rng(len);
  std::string shared = random_dna(rng, len);
  std::string noisy = shared;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    bool in_core = i >= len / 2 - 10 && i < len / 2 + 10;
    if (!in_core && rng.bernoulli(0.015)) {
      noisy[i] = bio::decode_base(
          (bio::encode_base(noisy[i]) + 1 + static_cast<int>(rng.uniform(3))) %
          4);
    }
  }
  OverlapCase c;
  c.a = random_dna(rng, len) + shared;
  c.b = noisy + random_dna(rng, len);
  c.anchor = {c.a.size() - len + len / 2 - 10, len / 2 - 10, 20};
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);
  const std::size_t n = scaled(
      static_cast<std::size_t>(args.get_int("ests", 600)), scale);

  // --- Engine comparison: the same clustering run under three configs. ---
  Reporter engine("align_micro",
                  {"mode", "pairs", "accepted", "dp cells",
                   "cells per accepted", "speedup vs exact"},
                  args);
  if (!engine.json_mode()) {
    print_header("Alignment hot-path engine: work units per accepted pair",
                 "Section 3.3 (banded extension) + hot-path memo/bounding");
    std::cout << "ESTs: " << n
              << "  (cells = LogP-charged DP work units; identical clusters "
                 "in every mode)\n\n";
  }

  auto wl = sim::generate(bench_workload_config(n));

  struct Mode {
    const char* name;
    bool bounded, memo;
  };
  double exact_cpa = 0.0;
  std::size_t exact_clusters = 0;
  for (const Mode mode : {Mode{"exact", false, false},
                          Mode{"bounded", true, false},
                          Mode{"bounded+memo", true, true}}) {
    auto cfg = bench_pace_config();
    cfg.bounded_align = mode.bounded;
    cfg.memo = mode.memo;
    // cluster_skip off: every emission of the promising-pair stream goes
    // through the aligner, exactly like the slaves' unsolicited batches
    // and the stale tail of large grants. This isolates the engine from
    // the master's union-find filter, which is a separate optimization.
    auto res = pace::cluster_sequential(wl.ests, cfg,
                                        {.cluster_skip = false});
    const auto& st = res.stats;
    const double cpa =
        static_cast<double>(st.dp_cells) /
        static_cast<double>(std::max<std::uint64_t>(1, st.pairs_accepted));
    if (exact_cpa == 0.0) {
      exact_cpa = cpa;
      exact_clusters = st.num_clusters;
    } else if (st.num_clusters != exact_clusters) {
      std::cerr << "FATAL: mode " << mode.name
                << " changed the clustering\n";
      return 1;
    }
    engine.add_row({mode.name, TablePrinter::fmt(st.pairs_processed),
                    TablePrinter::fmt(st.pairs_accepted),
                    TablePrinter::fmt(st.dp_cells),
                    TablePrinter::fmt(cpa, 1),
                    TablePrinter::fmt(exact_cpa / cpa, 3)});
  }
  engine.print(std::cout);

  // --- Kernel areas: cells touched per alignment strategy and length. ---
  Reporter kernels("align_kernels", {"kernel", "len", "cells"}, args);
  if (!kernels.json_mode()) {
    std::cout << "\nDP area per pair (cells), full matrix vs banded vs "
                 "anchored extension:\n\n";
  }
  for (std::size_t len : {std::size_t{100}, std::size_t{200},
                          std::size_t{400}}) {
    auto c = make_case(len);
    align::Scoring sc;
    align::OverlapParams params;
    const std::uint64_t nw_cells = align::global_align(c.a, c.b, sc).cells;
    std::uint64_t banded_cells = 0;
    align::banded_global_score(c.a, c.b, sc, 8, &banded_cells);
    const std::uint64_t anchored_cells =
        align::align_anchored(c.a, c.b, c.anchor, params).cells;
    kernels.add_row({"full NW", TablePrinter::fmt(len),
                     TablePrinter::fmt(nw_cells)});
    kernels.add_row({"banded global", TablePrinter::fmt(len),
                     TablePrinter::fmt(banded_cells)});
    kernels.add_row({"anchored extension", TablePrinter::fmt(len),
                     TablePrinter::fmt(anchored_cells)});
  }
  kernels.print(std::cout);
  if (!kernels.json_mode()) {
    std::cout << "\nExpected shape: bounded mode cuts cells on rejected "
              << "pairs; the memo removes\nrepeat pair alignments entirely; "
              << "clusters never change. Banding turns the\nquadratic full "
              << "matrix into a linear strip.\n";
  }

  // --- Wall-clock: scalar vs SIMD band sweeps on the same pair set. ---
  // Real time, so machine-dependent: opt-in via --wallclock and gated by
  // the bench_wallclock ctest through relative speedups only. Every
  // variant must also reproduce the scalar scores and cell counts exactly
  // — a mismatch is a hard failure, not a slow row.
  if (args.has_flag("wallclock")) {
    Reporter wall("align_wallclock",
                  {"kernel", "len", "pairs", "reps", "cells",
                   "kernel wall s", "speedup vs scalar"},
                  args);
    if (!wall.json_mode()) {
      std::cout << "\nKernel variants, wall-clock per sweep over one pair "
                   "set (band 8):\n\n";
    }
    std::vector<align::KernelVariant> variants{
        align::KernelVariant::kScalar};
    if (align::cpu_supports(align::KernelVariant::kSse2)) {
      variants.push_back(align::KernelVariant::kSse2);
    }
    if (align::cpu_supports(align::KernelVariant::kAvx2)) {
      variants.push_back(align::KernelVariant::kAvx2);
    }
    const std::size_t kBand = 8;
    align::Scoring sc;
    align::AlignArena arena;
    for (std::size_t len : {std::size_t{200}, std::size_t{400}}) {
      std::vector<std::pair<std::string, std::string>> cases;
      Prng rng(1234 + len);
      for (int i = 0; i < 8; ++i) {
        std::string a = random_dna(rng, len);
        std::string b = a;
        for (auto& ch : b) {
          if (rng.bernoulli(0.02)) {
            ch = bio::decode_base(
                (bio::encode_base(ch) + 1 + static_cast<int>(rng.uniform(3)))
                % 4);
          }
        }
        cases.emplace_back(std::move(a), std::move(b));
      }
      const std::size_t reps = 240000 / len;
      double scalar_s = 0.0;
      long scalar_sum = 0;
      std::uint64_t scalar_cells = 0;
      for (const align::KernelVariant v : variants) {
        long sum = 0;
        std::uint64_t cells = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < reps; ++r) {
          for (const auto& [a, b] : cases) {
            const auto res =
                align::extend_overlap_variant(v, a, b, sc, kBand, arena);
            sum += res.score + static_cast<long>(res.a_len);
            cells += res.cells;
          }
        }
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        if (v == align::KernelVariant::kScalar) {
          scalar_s = secs;
          scalar_sum = sum;
          scalar_cells = cells;
        } else if (sum != scalar_sum || cells != scalar_cells) {
          std::cerr << "FATAL: kernel " << align::to_string(v)
                    << " diverged from scalar at len " << len << "\n";
          return 1;
        }
        wall.add_row({align::to_string(v), TablePrinter::fmt(len),
                      TablePrinter::fmt(cases.size()),
                      TablePrinter::fmt(reps), TablePrinter::fmt(cells),
                      TablePrinter::fmt(secs, 6),
                      TablePrinter::fmt(scalar_s / secs, 3)});
      }
    }
    wall.print(std::cout);
    if (!wall.json_mode()) {
      std::cout << "\nSpeedups are relative to the scalar sweep in this "
                   "same process; scores and\ncell counts are asserted "
                   "identical across variants before timing is reported.\n";
    }
  }
  return 0;
}
