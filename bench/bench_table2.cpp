// Table 2 reproduction: clustering quality (OQ / OV / UN / CC) of our
// pipeline versus the serial baseline across growing input sizes.
//
// Paper shape to check: both systems score close together (within a few
// points); under-prediction exceeds over-prediction (conservative merge
// criteria); the comparator cannot run the largest input (memory), ours
// can.

#include "baseline/greedy.hpp"
#include "bench/common.hpp"
#include "pace/sequential.hpp"
#include "quality/metrics.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);

  Reporter table("table2", {"n", "system", "OQ", "OV", "UN", "CC"}, args);
  if (!table.json_mode()) {
    print_header("Table 2: quality assessment, ours vs baseline",
                 "Table 2 (OQ/OV/UN/CC for our software and CAP3 at n = 10k, "
                 "30k, 60k, 81,414; CAP3 'X' at 81,414)");
  }

  // Sizes proportional to the paper's 10,051 / 30,000 / 60,018 / 81,414.
  const std::vector<std::size_t> sizes = {
      scaled(250, scale), scaled(750, scale), scaled(1500, scale),
      scaled(2000, scale)};
  // Budget chosen so only the largest size trips the baseline, like CAP3
  // running out of memory at 81,414 but not at 60,018.
  const std::size_t budget = scaled(
      static_cast<std::size_t>(args.get_int("budget-bytes", 12000000)),
      scale);

  for (std::size_t n : sizes) {
    // Sparser coverage than the other benches: longer transcripts and
    // fewer reads per gene leave genuine coverage gaps, reproducing the
    // paper's conservative-clustering signature (UN of a few percent
    // dominating OV).
    auto wcfg = bench_workload_config(n);
    wcfg.num_genes = std::max<std::size_t>(2, n / 6);
    wcfg.min_exons = 4;
    wcfg.max_exons = 9;
    auto wl = sim::generate(wcfg);

    auto ours = pace::cluster_sequential(wl.ests, bench_pace_config());
    auto pc = quality::count_pairs(ours.clusters.labels(), wl.truth);
    table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(n)), "ours",
                   TablePrinter::fmt(pc.overlap_quality()),
                   TablePrinter::fmt(pc.over_prediction()),
                   TablePrinter::fmt(pc.under_prediction()),
                   TablePrinter::fmt(pc.correlation())});

    baseline::BaselineConfig bcfg;
    bcfg.overlap = bench_pace_config().overlap;  // identical acceptance
    bcfg.memory_cap_bytes = budget;
    bcfg.full_dp = false;  // quality comparison: same alignment kernel
    auto base = baseline::cluster_baseline(wl.ests, bcfg);
    if (base.stats.out_of_memory) {
      table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(n)),
                     "baseline", "X", "X", "X", "X"});
    } else {
      auto bq = quality::count_pairs(base.clusters.labels(), wl.truth);
      table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(n)),
                     "baseline", TablePrinter::fmt(bq.overlap_quality()),
                     TablePrinter::fmt(bq.over_prediction()),
                     TablePrinter::fmt(bq.under_prediction()),
                     TablePrinter::fmt(bq.correlation())});
    }
  }
  table.print(std::cout);
  if (!table.json_mode()) {
    std::cout << "\nExpected shape: systems within a few points of each "
              << "other; UN > OV (conservative\ncriteria); baseline 'X' at "
              << "the largest size (memory), like CAP3 at 81,414.\n";
  }
  return 0;
}
