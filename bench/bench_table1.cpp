// Table 1 reproduction: serial clustering tools versus input size under a
// memory budget.
//
// The paper ran TIGR Assembler, Phrap and CAP3 on one IBM SP processor
// with 512 MB: TIGR could not fit 50k ESTs, nothing fit 81,414, and the
// runnable entries took 23 min - 5 hrs. Those programs are closed source;
// the baseline here shares their architecture (materialize all candidate
// pairs from a seed index, align in arbitrary order) so it reproduces the
// same failure mode: candidate storage grows superlinearly and trips the
// memory budget at the larger sizes ('X'), while our pipeline's linear-
// space structures keep fitting and finish faster.

#include "baseline/greedy.hpp"
#include "bench/common.hpp"
#include "pace/sequential.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);

  Reporter table("table1",
                 {"ESTs", "baseline time (s)", "baseline peak (bytes)",
                  "ours time (s)", "ours space (bytes)",
                  "ours/baseline speedup"},
                 args);
  // The budget plays the role of the SP node's 512 MB, scaled to the bench
  // sizes: big enough for the small inputs, too small for the largest.
  const std::size_t budget = scaled(
      static_cast<std::size_t>(args.get_int("budget-bytes", 30000000)),
      scale);
  if (!table.json_mode()) {
    print_header("Table 1: serial tools vs input size under a memory budget",
                 "Table 1 (TIGR/Phrap/CAP3 run-times and 'X' = out of memory "
                 "on 512 MB)");
    std::cout << "candidate-storage budget for the baseline: " << budget
              << " bytes\n\n";
  }

  for (std::size_t base : {250, 500, 1000, 2000}) {
    const std::size_t n = scaled(base, scale);
    // Real EST libraries are heavily expression-skewed: a few genes own
    // thousands of ESTs. Those dense clusters are what blow up all-pairs
    // candidate storage and alignment volume in the serial tools.
    auto wcfg = bench_workload_config(n);
    wcfg.expression_skew = 0.95;
    auto wl = sim::generate(wcfg);

    baseline::BaselineConfig bcfg;
    bcfg.overlap = bench_pace_config().overlap;  // identical acceptance
    bcfg.memory_cap_bytes = budget;
    auto base_res = baseline::cluster_baseline(wl.ests, bcfg);

    auto pcfg = bench_pace_config();
    WallTimer t;
    auto ours = pace::cluster_sequential(wl.ests, pcfg);
    double ours_time = t.seconds();

    // Our space: the GST forest bytes (nodes + occurrences) dominate; it
    // is linear in input characters by construction.
    gst::BuildCounters counters;
    auto forest = gst::build_forest_sequential(wl.ests, pcfg.gst.window,
                                               &counters);
    std::size_t ours_bytes = 0;
    for (const auto& tr : forest) ours_bytes += tr.storage_bytes();

    std::string base_time =
        base_res.stats.out_of_memory
            ? "X"
            : TablePrinter::fmt(base_res.stats.t_total, 2);
    std::string speedup =
        base_res.stats.out_of_memory
            ? "X"
            : TablePrinter::fmt(base_res.stats.t_total / ours_time, 1) + "x";
    table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(n)),
                   base_time,
                   TablePrinter::fmt(
                       static_cast<std::uint64_t>(base_res.stats.peak_bytes)),
                   TablePrinter::fmt(ours_time, 2),
                   TablePrinter::fmt(static_cast<std::uint64_t>(ours_bytes)),
                   speedup});
  }
  table.print(std::cout);
  if (!table.json_mode()) {
    std::cout << "\n'X' = baseline exceeded the candidate-storage budget "
              << "(the paper's out-of-memory entries).\n";
  }
  return 0;
}
