// Table 1 reproduction: serial clustering tools versus input size under a
// memory budget.
//
// The paper ran TIGR Assembler, Phrap and CAP3 on one IBM SP processor
// with 512 MB: TIGR could not fit 50k ESTs, nothing fit 81,414, and the
// runnable entries took 23 min - 5 hrs. Those programs are closed source;
// the baseline here shares their architecture (materialize all candidate
// pairs from a seed index, align in arbitrary order) so it reproduces the
// same failure mode: candidate storage grows superlinearly and trips the
// memory budget at the larger sizes ('X'), while our pipeline's linear-
// space structures keep fitting and finish faster.

// The per-backend section extends the same memory-vs-time story to the
// pluggable pair sources: for each PairSource backend it reports the
// index footprint (GST forest vs k-mer inverted index vs FM-index), the
// pair and DP volume, the modeled parallel run-time, and whether the
// final partition matches the GST run byte-for-byte.

#include <memory>
#include <optional>

#include "baseline/greedy.hpp"
#include "bench/common.hpp"
#include "cluster/partition.hpp"
#include "pace/sequential.hpp"
#include "pairgen/source.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace estclust;
  using namespace estclust::bench;
  CliArgs args(argc, argv);
  const double scale = parse_scale(args);

  // --pair-source=gst|kmer|fm narrows the backend section to one backend
  // (plus gst, which always runs as the reference partition); "all" is
  // the default sweep.
  const std::string source_arg = args.get_string("pair-source", "all");
  std::vector<pairgen::Backend> backends;
  if (source_arg == "all") {
    backends.assign(std::begin(pairgen::kAllBackends),
                    std::end(pairgen::kAllBackends));
  } else {
    const auto b = pairgen::parse_backend(source_arg);
    ESTCLUST_CHECK_MSG(b.has_value(), "--pair-source must be gst, kmer, fm "
                                          << "or all (got '" << source_arg
                                          << "')");
    backends.push_back(pairgen::Backend::kGst);
    if (*b != pairgen::Backend::kGst) backends.push_back(*b);
  }

  // --ests N restricts the sweep to one size (bench_smoke uses 250).
  std::vector<std::size_t> sizes = {250, 500, 1000, 2000};
  if (const std::size_t only =
          static_cast<std::size_t>(args.get_int("ests", 0));
      only > 0) {
    sizes.assign(1, only);
  }

  Reporter table("table1",
                 {"ESTs", "baseline time (s)", "baseline peak (bytes)",
                  "ours time (s)", "ours space (bytes)",
                  "ours/baseline speedup"},
                 args);
  Reporter per_backend("table1_backends",
                       {"backend", "ESTs", "index (bytes)", "pairs",
                        "DP cells", "time (s)", "match gst"},
                       args);
  // The budget plays the role of the SP node's 512 MB, scaled to the bench
  // sizes: big enough for the small inputs, too small for the largest.
  const std::size_t budget = scaled(
      static_cast<std::size_t>(args.get_int("budget-bytes", 30000000)),
      scale);
  if (!table.json_mode()) {
    print_header("Table 1: serial tools vs input size under a memory budget",
                 "Table 1 (TIGR/Phrap/CAP3 run-times and 'X' = out of memory "
                 "on 512 MB)");
    std::cout << "candidate-storage budget for the baseline: " << budget
              << " bytes\n\n";
  }

  for (std::size_t base : sizes) {
    const std::size_t n = scaled(base, scale);
    // Real EST libraries are heavily expression-skewed: a few genes own
    // thousands of ESTs. Those dense clusters are what blow up all-pairs
    // candidate storage and alignment volume in the serial tools.
    auto wcfg = bench_workload_config(n);
    wcfg.expression_skew = 0.95;
    auto wl = sim::generate(wcfg);

    baseline::BaselineConfig bcfg;
    bcfg.overlap = bench_pace_config().overlap;  // identical acceptance
    bcfg.memory_cap_bytes = budget;
    auto base_res = baseline::cluster_baseline(wl.ests, bcfg);

    auto pcfg = bench_pace_config();
    WallTimer t;
    auto ours = pace::cluster_sequential(wl.ests, pcfg);
    double ours_time = t.seconds();

    // Our space: the GST forest bytes (nodes + occurrences) dominate; it
    // is linear in input characters by construction.
    gst::BuildCounters counters;
    auto forest = gst::build_forest_sequential(wl.ests, pcfg.gst.window,
                                               &counters);
    std::size_t ours_bytes = 0;
    for (const auto& tr : forest) ours_bytes += tr.storage_bytes();

    std::string base_time =
        base_res.stats.out_of_memory
            ? "X"
            : TablePrinter::fmt(base_res.stats.t_total, 2);
    std::string speedup =
        base_res.stats.out_of_memory
            ? "X"
            : TablePrinter::fmt(base_res.stats.t_total / ours_time, 1) + "x";
    table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(n)),
                   base_time,
                   TablePrinter::fmt(
                       static_cast<std::uint64_t>(base_res.stats.peak_bytes)),
                   TablePrinter::fmt(ours_time, 2),
                   TablePrinter::fmt(static_cast<std::uint64_t>(ours_bytes)),
                   speedup});

    // Backend comparison at this size: index footprint from a sequential
    // whole-input source (all buckets owned), work and modeled time from
    // a 4-rank parallel run. The gst partition is the reference every
    // other backend must reproduce.
    std::optional<std::string> gst_partition;
    for (pairgen::Backend b : backends) {
      auto src = pairgen::make_pair_source(b, wl.ests, forest,
                                           pcfg.gst.window, pcfg.psi);
      auto bcfg2 = pcfg;
      bcfg2.pair_source = b;
      auto res = run_parallel(wl.ests, bcfg2, 4);
      const std::string partition = cluster::canonical_partition(res.labels);
      std::string match = "yes";
      if (!gst_partition.has_value()) {
        gst_partition = partition;
        if (b != pairgen::Backend::kGst) match = "n/a";
      } else if (partition != *gst_partition) {
        match = "NO";
      }
      per_backend.add_row(
          {std::string(pairgen::backend_name(b)),
           TablePrinter::fmt(static_cast<std::uint64_t>(n)),
           TablePrinter::fmt(static_cast<std::uint64_t>(src->index_bytes())),
           TablePrinter::fmt(res.stats.pairs_generated),
           TablePrinter::fmt(res.stats.dp_cells),
           TablePrinter::fmt(res.stats.t_total, 4), match});
    }
  }
  table.print(std::cout);
  if (!per_backend.json_mode()) {
    std::cout << "\n";
    print_header("Table 1b: pair-source backends at equal acceptance",
                 "Table 1's space/time axis, across GST / k-mer filter / "
                 "FM-index pair sources");
  }
  per_backend.print(std::cout);
  if (!table.json_mode()) {
    std::cout << "\n'X' = baseline exceeded the candidate-storage budget "
              << "(the paper's out-of-memory entries).\n";
  }
  return 0;
}
